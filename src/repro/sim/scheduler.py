"""Discrete-event scheduler: concurrent clients over the virtual clock.

Everything the paper's tables measure runs *sequentially* — one
operation at a time on :class:`repro.sim.clock.SimClock`.  That is the
right methodology for relative-cost claims, but it makes "heavy
traffic" unmeasurable: no two requests ever contend for a server or a
disk, so throughput scales without bound and latency never grows.

This module adds the missing half: a priority-queue event loop over
virtual time on which thousands of simulated clients run as generator
coroutines.  The execution model is **atomic-frame discrete-event
simulation**:

* A client coroutine ``yield``\\ s directives — :func:`think` to idle for
  some virtual time, :func:`request` (or a bare callable) to perform one
  synchronous operation against the simulated system.

* When a request fires at virtual time *T*, the scheduler opens a clock
  *frame* at *T* (:meth:`SimClock.begin_frame`) and runs the operation
  to completion in ordinary synchronous Python.  Every charge the
  operation makes — invocation paths, disk transfers, fault-plane
  delays, queue waits — advances the frame-local clock, so the cost
  model and the fault plane see consistent, locally monotonic time.
  Closing the frame yields the operation's total virtual duration Δ;
  the coroutine is resumed (with the operation's return value, or its
  exception thrown in) at *T + Δ*.

* Contention between overlapping operations is carried by
  :class:`ServiceQueue` reservations on shared resources (server nodes,
  disks): each admission reserves the earliest-free slot and charges
  the waiting time to a ``*_queue_wait`` clock category, so queueing
  delay — the signature of saturation — appears in both each request's
  latency and the category totals.

Determinism: events are ordered by ``(time, sequence-number)`` with
sequence numbers assigned in creation order, frames execute atomically,
and all randomness lives in seeded generators owned by the workload.  A
run is a pure function of (workload, seed, fault plan).

Approximation (documented, deliberate): because an operation's charges
happen atomically at its start time, a resource touched mid-operation is
reserved in event-start order rather than true arrival order, and a
fault-plane event may be applied from within a frame slightly before
tasks whose start time precedes the frame's *end* get to run.  Both
effects are deterministic and shrink with operation granularity; the
sequential calibration path never enters a frame and is byte-identical
to earlier revisions.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

__all__ = [
    "ServiceQueue",
    "Scheduler",
    "Task",
    "think",
    "request",
]


class ServiceQueue:
    """A FIFO service centre in virtual time: ``servers`` concurrent
    slots, earliest-free-slot reservation.

    ``admit`` models one request arriving now: it reserves the earliest
    slot to come free, charges the wait (time until that slot frees) to
    the queue's clock category, and occupies the slot for ``service_us``.
    With a single server and a backlog of *n* undrained reservations the
    wait is exactly *n × service_us* — the "queue depth × service time"
    model.  The *service* time itself is **not** charged here: it either
    is charged by the resource's own cost model (a disk transfer charges
    ``disk``) or represents server-side work the client's operation
    charges inline; the queue only adds the waiting.

    All bookkeeping is pure virtual-time arithmetic — no wall clock, no
    randomness — so a workload replayed with the same seed reproduces
    identical waits.
    """

    __slots__ = ("clock", "servers", "category", "_free_at", "admitted",
                 "total_wait_us", "total_service_us", "peak_wait_us")

    def __init__(self, clock, servers: int = 1,
                 category: str = "queue_wait") -> None:
        if servers < 1:
            raise ValueError(f"servers must be >= 1, got {servers}")
        self.clock = clock
        self.servers = servers
        self.category = category
        #: Min-heap of per-slot free times.
        self._free_at: List[float] = [0.0] * servers
        self.admitted = 0
        self.total_wait_us = 0.0
        self.total_service_us = 0.0
        self.peak_wait_us = 0.0

    def admit(self, service_us: float) -> float:
        """Admit one request at the current (frame-local) virtual time;
        charge and return its queue wait in microseconds."""
        if service_us < 0:
            raise ValueError(f"negative service time: {service_us}")
        now = self.clock.now_us
        slot_free = heapq.heappop(self._free_at)
        start = slot_free if slot_free > now else now
        wait = start - now
        heapq.heappush(self._free_at, start + service_us)
        self.admitted += 1
        self.total_service_us += service_us
        if wait > 0.0:
            self.total_wait_us += wait
            if wait > self.peak_wait_us:
                self.peak_wait_us = wait
            self.clock.advance(wait, self.category)
        return wait

    def backlog_us(self) -> float:
        """Virtual time until the most-loaded slot comes free — how far
        behind offered load the centre currently is."""
        latest = max(self._free_at)
        now = self.clock.now_us
        return latest - now if latest > now else 0.0

    def reset(self) -> None:
        """Drop all reservations (e.g. after a crash wipes a server's
        request queue) and keep the cumulative statistics."""
        self._free_at = [0.0] * self.servers

    def stats(self) -> dict:
        return {
            "servers": self.servers,
            "admitted": self.admitted,
            "total_wait_ms": round(self.total_wait_us / 1000, 3),
            "total_service_ms": round(self.total_service_us / 1000, 3),
            "peak_wait_ms": round(self.peak_wait_us / 1000, 3),
        }


class _Think:
    __slots__ = ("us", "category")

    def __init__(self, us: float, category: str) -> None:
        self.us = us
        self.category = category


class _Request:
    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[], Any]) -> None:
        self.fn = fn


def think(us: float, category: str = "client_think") -> _Think:
    """Directive: idle for ``us`` of virtual time (request pacing)."""
    return _Think(us, category)


def request(fn: Callable[[], Any]) -> _Request:
    """Directive: run ``fn()`` as one atomic operation at the task's
    current virtual time; the task resumes with its return value once
    the operation's charged virtual time has elapsed.  A bare callable
    yielded from a task means the same thing."""
    return _Request(fn)


class Task:
    """One simulated client: a generator coroutine driven by the
    scheduler.  ``result`` holds the generator's return value once
    ``done``; an exception that escapes the generator is re-raised from
    :meth:`Scheduler.run`."""

    __slots__ = ("name", "gen", "done", "result", "started_us",
                 "finished_us")

    def __init__(self, name: str,
                 gen: Generator[Any, Any, Any]) -> None:
        self.name = name
        self.gen = gen
        self.done = False
        self.result: Any = None
        self.started_us = 0.0
        self.finished_us = 0.0

    def __repr__(self) -> str:
        state = "done" if self.done else "live"
        return f"<Task {self.name!r} {state}>"


class Scheduler:
    """The event loop: a heap of ``(time, seq, task, payload)`` events
    executed in virtual-time order (ties broken by creation order, so
    runs are deterministic)."""

    __slots__ = ("world", "clock", "_heap", "_seq", "tasks", "operations")

    def __init__(self, world) -> None:
        self.world = world
        self.clock = world.clock
        self._heap: List[Tuple[float, int, Task, Tuple[str, Any]]] = []
        self._seq = 0
        self.tasks: List[Task] = []
        #: Total request operations executed (frames opened).
        self.operations = 0

    # --- task management ---------------------------------------------------
    def spawn(self, gen: Generator[Any, Any, Any],
              name: Optional[str] = None,
              at_us: Optional[float] = None) -> Task:
        """Register a client coroutine; it first runs at ``at_us``
        (default: the current virtual time)."""
        task = Task(name or f"task{len(self.tasks)}", gen)
        start = self.clock.now_us if at_us is None else at_us
        task.started_us = start
        self.tasks.append(task)
        self._post(start, task, ("resume", None))
        return task

    def _post(self, time_us: float, task: Task,
              payload: Tuple[str, Any]) -> None:
        heapq.heappush(self._heap, (time_us, self._seq, task, payload))
        self._seq += 1

    # --- the loop ----------------------------------------------------------
    def run(self, until_us: Optional[float] = None) -> None:
        """Process events in time order until the heap drains (or the
        next event lies beyond ``until_us``).  Global clock time follows
        event timestamps; fault-plane events whose time has arrived are
        applied between frames as time passes."""
        clock = self.clock
        network = self.world.network
        while self._heap:
            time_us, _, task, payload = self._heap[0]
            if until_us is not None and time_us > until_us:
                break
            heapq.heappop(self._heap)
            if time_us > clock.now_us:
                clock.seek(time_us)
            if network.fault_plane is not None:
                network.fault_plane.poll()
            self._step(time_us, task, payload)

    def run_all(self) -> List[Task]:
        """Run to quiescence and return the spawned tasks."""
        self.run()
        return self.tasks

    def _step(self, now_us: float, task: Task,
              payload: Tuple[str, Any]) -> None:
        kind, value = payload
        try:
            if kind == "throw":
                directive = task.gen.throw(value)
            else:
                directive = task.gen.send(value)
        except StopIteration as stop:
            task.done = True
            task.result = stop.value
            task.finished_us = now_us
            return
        if isinstance(directive, _Think):
            self.clock.begin_frame(now_us)
            try:
                self.clock.advance(directive.us, directive.category)
            finally:
                elapsed = self.clock.end_frame()
            self._post(now_us + elapsed, task, ("resume", None))
            return
        if callable(directive):
            directive = _Request(directive)
        if isinstance(directive, _Request):
            self.operations += 1
            self.clock.begin_frame(now_us)
            try:
                result: Tuple[str, Any] = ("resume", directive.fn())
            except Exception as exc:  # rethrown into the task at T + Δ
                result = ("throw", exc)
            finally:
                elapsed = self.clock.end_frame()
            self._post(now_us + elapsed, task, result)
            return
        raise TypeError(
            f"task {task.name!r} yielded {directive!r}; expected think(), "
            f"request(), or a callable"
        )
