"""Exception hierarchy for the Spring extensible file system reproduction.

Spring interfaces are strongly typed contracts whose operations "raise
exceptions when errors are encountered" (paper, Appendix A).  Every error
raised by this library derives from :class:`SpringError` so callers can
catch library failures without masking programming errors.
"""

from __future__ import annotations


class SpringError(Exception):
    """Base class for all errors raised by the repro library."""


class InvocationError(SpringError):
    """An object invocation could not be carried out."""


class TransientNetworkError(InvocationError):
    """A cross-node invocation failed for a reason that may heal with
    time: a partitioned link, a crashed-but-recovering node, a dropped
    message.  :class:`repro.ipc.retry.RetryPolicy` retries exactly this
    family; permanent failures (revocation, bad arguments) never match.
    """


class NodeCrashedError(TransientNetworkError):
    """The source or destination node of a message is crashed (see
    :meth:`repro.ipc.node.Node.crash`).  Heals when the node recovers."""


class MessageDroppedError(TransientNetworkError):
    """The fault plane dropped this message in flight (scheduled or
    probabilistic drop); the sender sees a timeout and may retry."""


class RevokedObjectError(InvocationError):
    """The target object's server has destroyed or revoked the object."""


class NoCurrentDomainError(InvocationError):
    """An operation was invoked with no active calling domain.

    All Spring invocations happen on behalf of some domain; tests and
    examples enter one with ``with domain.activate():`` or via
    :meth:`repro.world.World.user_domain`.
    """


class NarrowError(SpringError):
    """An object could not be narrowed to the requested interface."""


class NamingError(SpringError):
    """Base class for naming-system errors."""


class NameNotFoundError(NamingError):
    """A name did not resolve in the context it was looked up in."""


class NameAlreadyBoundError(NamingError):
    """A bind was attempted for a name that is already bound."""


class NotAContextError(NamingError):
    """A compound-name component resolved to a non-context object."""


class InvalidNameError(NamingError):
    """A name was syntactically invalid (empty, or illegal component)."""


class PermissionDeniedError(SpringError):
    """The calling domain's credentials fail the target's ACL check."""


class VmError(SpringError):
    """Base class for virtual-memory errors."""


class BindError(VmError):
    """A bind() on a memory object failed."""


class ChannelClosedError(VmError):
    """An operation was attempted on a torn-down pager-cache channel."""


class OutOfRangeError(VmError):
    """An offset/length pair falls outside the memory object."""


class StorageError(SpringError):
    """Base class for storage-substrate errors."""


class DeviceError(StorageError):
    """A block-device transfer failed (bad block number, bad size)."""


class NoSpaceError(StorageError):
    """The device or file system has no free blocks or i-nodes."""


class FsError(SpringError):
    """Base class for file-system-layer errors."""


class FileNotFoundError_(FsError):
    """A file lookup failed.  Named with a trailing underscore to avoid
    shadowing the Python builtin while staying recognisable."""


class FileExistsError_(FsError):
    """A create collided with an existing file."""


class NotADirectoryError_(FsError):
    """A path component was a regular file."""


class IsADirectoryError_(FsError):
    """A file operation was attempted on a directory."""


class DirectoryNotEmptyError(FsError):
    """remove() of a non-empty directory."""


class StaleFileError(FsError):
    """The file was removed underneath an open handle."""


class StackingError(FsError):
    """An illegal stack_on() composition (wrong type, too many layers,
    layer already stacked)."""


class ReadOnlyError(FsError):
    """A write was attempted through a read-only handle or layer."""


class UnixError(SpringError):
    """POSIX-facade error carrying an errno-style symbolic code."""

    def __init__(self, code: str, message: str = ""):
        self.code = code
        super().__init__(f"[{code}] {message}" if message else code)
