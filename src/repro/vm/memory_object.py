"""Memory objects and cache managers.

A memory object "is an abstraction of store (memory) that can be mapped
into address spaces" (paper sec. 3.3.1).  Crucially — and in contrast to
Mach-style external pagers (paper Table 1) — it carries *no* paging
operations: only length operations and ``bind``.  The separation lets
the implementor of the memory object live somewhere other than the
implementor of the pager object that provides its contents; DFS exploits
exactly this by forwarding local binds to the underlying SFS file.
"""

from __future__ import annotations

import abc
from typing import Tuple

from repro.ipc.object import SpringObject
from repro.types import AccessRights
from repro.vm.channel import BindResult, CacheRights, Channel
from repro.vm.pager_object import PagerObject


class CacheManager(SpringObject, abc.ABC):
    """Anything that can hold cached data for a pager.

    "In general, anybody can implement cache objects.  A VMM is one such
    cache manager; pagers can also act as cache managers to other
    pagers." (paper sec. 4.2)
    """

    @abc.abstractmethod
    def accept_channel(self, pager_object: PagerObject, label: str) -> Channel:
        """Complete channel setup initiated by a pager during ``bind``.

        The cache manager constructs its cache object and cache-rights
        object for this source, assembles the :class:`Channel`, and
        returns it.  The pager keeps the channel so later binds by the
        same cache manager for an equivalent memory object reuse it.
        """


class MemoryObject(SpringObject, abc.ABC):
    """The memory_object interface (paper Appendix B)."""

    @abc.abstractmethod
    def bind(
        self,
        cache_manager: CacheManager,
        requested_access: AccessRights,
        offset: int,
        length: int,
    ) -> BindResult:
        """Return a cache_rights object the caller can use to locate a
        pager-cache object connection.

        The cache manager making the call passes itself (the paper passes
        a name identifying it); if no channel exists yet for this memory
        object at that cache manager, the pager calls back
        ``cache_manager.accept_channel`` to exchange pager, cache, and
        cache-rights objects.
        """

    @abc.abstractmethod
    def get_length(self) -> int:
        """Current length of the object in bytes."""

    @abc.abstractmethod
    def set_length(self, length: int) -> None:
        """Truncate or extend the object."""
