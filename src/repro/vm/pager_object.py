"""Pager object interfaces (paper Appendix B).

Pager objects are implemented by data providers ("pagers") and invoked by
cache managers.  :class:`FsPager` is the file-system subclass that adds
attribute paging (paper sec. 4.3): rather than burden the data-movement
interface with file operations, file systems *narrow* the pager object
they receive to ``fs_pager`` — if the narrow fails they know they are
talking to a plain storage pager.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Dict

from repro.ipc.object import SpringObject
from repro.types import PAGE_SIZE, AccessRights

if TYPE_CHECKING:
    from repro.fs.attributes import FileAttributes


class PagerObject(SpringObject, abc.ABC):
    """One pager's end of a pager-cache channel for one memory object."""

    @abc.abstractmethod
    def page_in(self, offset: int, size: int, access: AccessRights) -> bytes:
        """Request data in read-only or read-write mode.

        Granting READ_WRITE obliges the pager to perform whatever
        coherency actions its protocol requires against other caches.
        """

    def page_in_range(
        self, offset: int, min_size: int, max_size: int, access: AccessRights
    ) -> bytes:
        """Ranged page-in (paper sec. 8's read-ahead extension): "allows
        a cache manager to convey to the pager the maximum and minimum
        amount of data required during a page-in.  The pager is then
        given the opportunity to return more data than strictly needed."

        The default returns exactly the minimum; pagers that can cluster
        (the disk layer) or that cache (the coherency layer) override it.
        """
        return self.page_in(offset, min_size, access)

    @abc.abstractmethod
    def page_out(self, offset: int, size: int, data: bytes) -> None:
        """Write data to the pager; the caller no longer retains it."""

    @abc.abstractmethod
    def write_out(self, offset: int, size: int, data: bytes) -> None:
        """Write data to the pager; the caller retains it read-only."""

    @abc.abstractmethod
    def sync(self, offset: int, size: int, data: bytes) -> None:
        """Write data to the pager; the caller retains it in the same
        mode it held before the call."""

    # --- ranged write-side ops (the write analogue of page_in_range) ------
    #
    # A cache manager holding a contiguous run of dirty pages may push
    # them in ONE call instead of one per page, so the whole run pays a
    # single invocation and the disk layer can cluster the device write.
    # The defaults split the run into single-page calls, so existing
    # pagers keep working unmodified; layers with a cheaper vectored path
    # override them.

    def page_out_range(self, offset: int, size: int, data: bytes) -> None:
        """Ranged :meth:`page_out`: the caller no longer retains any of
        ``[offset, offset + size)``."""
        self._split_range(self.page_out, offset, size, data)

    def write_out_range(self, offset: int, size: int, data: bytes) -> None:
        """Ranged :meth:`write_out`: the caller retains the run read-only."""
        self._split_range(self.write_out, offset, size, data)

    def sync_range(self, offset: int, size: int, data: bytes) -> None:
        """Ranged :meth:`sync`: the caller retains the run in the same
        mode it held before the call."""
        self._split_range(self.sync, offset, size, data)

    def _split_range(
        self,
        op: Callable[[int, int, bytes], None],
        offset: int,
        size: int,
        data: bytes,
    ) -> None:
        position = 0
        while position < size:
            take = min(PAGE_SIZE, size - position)
            op(offset + position, take, data[position : position + take])
            position += take

    @abc.abstractmethod
    def done_with_pager_object(self) -> None:
        """The cache manager is closing its end of the channel."""


class FsPager(PagerObject):
    """Pager object subclass exported by file systems.

    Adds the attribute-coherency building blocks: cache managers that are
    themselves file systems pull attributes with :meth:`attr_page_in` and
    push modifications with :meth:`attr_write_out` — the attribute
    analogues of page_in/write_out ("operations for caching and keeping
    coherent the access and modified times and file length", sec. 4.3).
    """

    @abc.abstractmethod
    def attr_page_in(self) -> "FileAttributes":
        """Fetch the file's current attributes for caching."""

    @abc.abstractmethod
    def attr_write_out(self, attrs: "FileAttributes") -> None:
        """Push modified attributes back to the pager."""
