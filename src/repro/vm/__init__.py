"""Spring virtual memory architecture (paper sec. 3.3).

Memory objects (mappable store, no paging ops), pager/cache objects (the
two ends of a coherency channel), cache-rights objects, and the per-node
VMM.
"""

from repro.vm.cache_object import CacheObject, FsCache
from repro.vm.channel import BindResult, CacheRights, Channel
from repro.vm.memory_object import CacheManager, MemoryObject
from repro.vm.page import CachedPage, PageStore
from repro.vm.pager_base import ChannelRegistry
from repro.vm.pager_object import FsPager, PagerObject
from repro.vm.vmm import AddressSpace, Mapping, VmCache, Vmm, VmmCacheObject

__all__ = [
    "CacheObject",
    "FsCache",
    "BindResult",
    "CacheRights",
    "Channel",
    "CacheManager",
    "MemoryObject",
    "CachedPage",
    "PageStore",
    "ChannelRegistry",
    "FsPager",
    "PagerObject",
    "AddressSpace",
    "Mapping",
    "VmCache",
    "Vmm",
    "VmmCacheObject",
]
