"""Page-granularity data store.

Shared by every cache manager in the system — the VMM's per-object page
caches, the coherency layer's block cache, COMPFS's uncompressed block
cache — so the per-block bookkeeping (rights, dirtiness, byte-range
read/write across page boundaries) is implemented exactly once.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.types import PAGE_SIZE, AccessRights, page_range


@dataclasses.dataclass
class CachedPage:
    """One page held by a cache manager."""

    data: bytearray
    rights: AccessRights
    dirty: bool = False

    def snapshot(self) -> bytes:
        return bytes(self.data)


def coalesce_runs(
    pairs: List[Tuple[int, CachedPage]]
) -> List[List[Tuple[int, CachedPage]]]:
    """Group ascending ``(index, page)`` pairs into contiguous runs.

    Each run is a maximal list of pairs with consecutive indices — the
    unit the vectored pager ops (``page_out_range`` etc.) write in one
    call.  Input order is preserved, so runs ascend whenever the input
    does."""
    runs: List[List[Tuple[int, CachedPage]]] = []
    for index, page in pairs:
        if runs and index == runs[-1][-1][0] + 1:
            runs[-1].append((index, page))
        else:
            runs.append([(index, page)])
    return runs


def index_runs(indices: List[int]) -> List[Tuple[int, int]]:
    """Coalesce ascending page indices into ``(start, count)`` runs."""
    runs: List[Tuple[int, int]] = []
    for index in indices:
        if runs and index == runs[-1][0] + runs[-1][1]:
            runs[-1] = (runs[-1][0], runs[-1][1] + 1)
        else:
            runs.append((index, 1))
    return runs


class PageStore:
    """A sparse page-indexed store with rights and dirty tracking.

    All offsets are byte offsets into the backing object; pages are
    :data:`repro.types.PAGE_SIZE` bytes.  Missing pages are faulted in by
    the owner via the ``fault`` callback given to :meth:`read` /
    :meth:`write`.

    An optional ``observer`` (an object with ``page_installed(index,
    page)`` / ``page_dropped(index, page)``) is notified whenever a page
    enters or leaves the store — the VMM uses this to maintain its
    resident-page count and eviction queues incrementally instead of
    rescanning every cache per fault.
    """

    def __init__(self, observer: Optional[object] = None) -> None:
        self._pages: Dict[int, CachedPage] = {}
        self.observer = observer

    def _note_install(self, index: int, page: CachedPage) -> None:
        if self.observer is not None:
            self.observer.page_installed(index, page)

    def _note_drop(self, index: int, page: CachedPage) -> None:
        if self.observer is not None:
            self.observer.page_dropped(index, page)

    # --- introspection ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, index: int) -> bool:
        return index in self._pages

    def get(self, index: int) -> Optional[CachedPage]:
        return self._pages.get(index)

    def pages(self) -> Iterator[Tuple[int, CachedPage]]:
        return iter(sorted(self._pages.items()))

    def dirty_pages(self) -> List[Tuple[int, CachedPage]]:
        return [(i, p) for i, p in sorted(self._pages.items()) if p.dirty]

    def dirty_runs(self) -> List[List[Tuple[int, CachedPage]]]:
        """Dirty pages coalesced into contiguous ascending runs — one
        ranged write-back per run.  A clean (or absent) page between two
        dirty ones splits the run."""
        return coalesce_runs(self.dirty_pages())

    def resident_bytes(self) -> int:
        return len(self._pages) * PAGE_SIZE

    def _tracked_pages(self, offset: int, size: int):
        """Resident pages intersecting the byte range.  Coherency actions
        may cover 'the whole file' (size 2**62); iterate resident keys,
        never the raw page range."""
        if size <= 0:
            return []
        first = offset // PAGE_SIZE
        last = (offset + size - 1) // PAGE_SIZE
        return [p for p in self._pages if first <= p <= last]

    # --- page-level mutation ----------------------------------------------
    def install(
        self, index: int, data: bytes, rights: AccessRights, dirty: bool = False
    ) -> CachedPage:
        """Install (or replace) a page.  ``data`` shorter than a page is
        zero-padded — pagers return short data at EOF."""
        buf = bytearray(PAGE_SIZE)
        buf[: len(data)] = data
        page = CachedPage(buf, rights, dirty)
        replaced = index in self._pages
        self._pages[index] = page
        if not replaced:
            self._note_install(index, page)
        return page

    def drop(self, index: int) -> Optional[CachedPage]:
        page = self._pages.pop(index, None)
        if page is not None:
            self._note_drop(index, page)
        return page

    def drop_range(self, offset: int, size: int) -> List[Tuple[int, CachedPage]]:
        dropped = []
        for index in sorted(self._tracked_pages(offset, size)):
            page = self._pages.pop(index)
            self._note_drop(index, page)
            dropped.append((index, page))
        return dropped

    def zero_range(self, offset: int, size: int) -> None:
        """Mark a byte range as zero-filled (paper Appendix A zero_fill).
        Present pages are zeroed in place and marked clean; absent pages
        are installed as clean read-only zeros."""
        for index in page_range(offset, size):
            page = self._pages.get(index)
            if page is None:
                self.install(index, b"", AccessRights.READ_ONLY)
            else:
                page.data[:] = bytes(PAGE_SIZE)
                page.dirty = False

    # --- coherency-action helpers ------------------------------------------
    def collect_modified(self, offset: int, size: int) -> Dict[int, bytes]:
        """Data of dirty pages in the range, keyed by page index."""
        modified = {}
        for index in self._tracked_pages(offset, size):
            page = self._pages[index]
            if page.dirty:
                modified[index] = page.snapshot()
        return modified

    def clean_range(self, offset: int, size: int) -> None:
        for index in self._tracked_pages(offset, size):
            self._pages[index].dirty = False

    def downgrade_range(self, offset: int, size: int) -> None:
        """RW -> RO over the byte range (deny_writes)."""
        for index in self._tracked_pages(offset, size):
            self._pages[index].rights = AccessRights.READ_ONLY

    def truncate_to(self, length: int) -> None:
        """Discard cached data beyond ``length``: whole pages past the
        boundary are dropped; the tail of a partial boundary page is
        zeroed (so a later extension reads zeros, not stale bytes).  Data
        below ``length`` is preserved — unlike drop_range, which would
        discard the whole boundary page."""
        boundary_page, within = divmod(length, PAGE_SIZE)
        for index in [p for p in self._pages if p > boundary_page]:
            self._note_drop(index, self._pages.pop(index))
        if within == 0:
            page = self._pages.pop(boundary_page, None)
            if page is not None:
                self._note_drop(boundary_page, page)
        else:
            page = self._pages.get(boundary_page)
            if page is not None:
                page.data[within:] = bytes(PAGE_SIZE - within)

    def clear(self) -> List[Tuple[int, CachedPage]]:
        everything = sorted(self._pages.items())
        self._pages.clear()
        for index, page in everything:
            self._note_drop(index, page)
        return everything

    # --- byte-range access ---------------------------------------------------
    def read(
        self,
        offset: int,
        size: int,
        fault: Callable[[int, AccessRights], CachedPage],
    ) -> bytes:
        """Copy ``size`` bytes starting at ``offset`` out of the store,
        calling ``fault(page_index, READ_ONLY)`` for each missing page."""
        out = bytearray()
        remaining = size
        position = offset
        while remaining > 0:
            index = position // PAGE_SIZE
            page = self._pages.get(index)
            if page is None:
                page = fault(index, AccessRights.READ_ONLY)
            start = position % PAGE_SIZE
            take = min(PAGE_SIZE - start, remaining)
            out += page.data[start : start + take]
            position += take
            remaining -= take
        return bytes(out)

    def write(
        self,
        offset: int,
        data: bytes,
        fault: Callable[[int, AccessRights], CachedPage],
    ) -> None:
        """Copy ``data`` into the store starting at ``offset``.

        Every touched page must be writable: missing pages and read-only
        pages are (re)faulted with READ_WRITE via ``fault``; pages are
        marked dirty.
        """
        remaining = len(data)
        position = offset
        consumed = 0
        while remaining > 0:
            index = position // PAGE_SIZE
            page = self._pages.get(index)
            if page is None or not page.rights.writable:
                page = fault(index, AccessRights.READ_WRITE)
            start = position % PAGE_SIZE
            take = min(PAGE_SIZE - start, remaining)
            page.data[start : start + take] = data[consumed : consumed + take]
            page.dirty = True
            position += take
            consumed += take
            remaining -= take
