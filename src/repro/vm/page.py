"""Page-granularity data store.

Shared by every cache manager in the system — the VMM's per-object page
caches, the coherency layer's block cache, COMPFS's uncompressed block
cache — so the per-block bookkeeping (rights, dirtiness, byte-range
read/write across page boundaries) is implemented exactly once.

Buffer ownership (see DESIGN.md section 7): the zero-copy read surface
— :meth:`CachedPage.snapshot` and :meth:`PageStore.read_bytes` — returns
read-only :class:`memoryview` slices over the page's backing buffer,
valid until the next mutation of that page.  Callers that consume the
data synchronously (write-back down a stack, transform-and-encode)
never copy; callers that retain it past the call must copy
(:meth:`PageStore.collect_modified` does, because coherency recalls
outlive the pages they were recalled from).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.types import PAGE_SIZE, AccessRights, page_range

#: The interned zero page: every zero-fill in the system slices this
#: one immutable buffer instead of allocating ``bytes(n)`` per call.
ZERO_PAGE = bytes(PAGE_SIZE)
#: Read-only view of :data:`ZERO_PAGE`; slicing a view is allocation-free
#: where slicing the bytes would copy.
ZERO_VIEW = memoryview(ZERO_PAGE)

_READ_ONLY = AccessRights.READ_ONLY


@dataclasses.dataclass(slots=True)
class CachedPage:
    """One page held by a cache manager."""

    data: bytearray
    rights: AccessRights
    dirty: bool = False

    def snapshot(self) -> memoryview:
        """Read-only view of the page's current contents — zero-copy,
        valid until the page is next mutated in place.  Retain-safe
        consumers must copy (``bytes(view)``)."""
        return memoryview(self.data).toreadonly()


def coalesce_runs(
    pairs: List[Tuple[int, CachedPage]]
) -> List[List[Tuple[int, CachedPage]]]:
    """Group ascending ``(index, page)`` pairs into contiguous runs.

    Each run is a maximal list of pairs with consecutive indices — the
    unit the vectored pager ops (``page_out_range`` etc.) write in one
    call.  Input order is preserved, so runs ascend whenever the input
    does."""
    runs: List[List[Tuple[int, CachedPage]]] = []
    for index, page in pairs:
        if runs and index == runs[-1][-1][0] + 1:
            runs[-1].append((index, page))
        else:
            runs.append([(index, page)])
    return runs


def index_runs(indices: List[int]) -> List[Tuple[int, int]]:
    """Coalesce ascending page indices into ``(start, count)`` runs."""
    runs: List[Tuple[int, int]] = []
    for index in indices:
        if runs and index == runs[-1][0] + runs[-1][1]:
            runs[-1] = (runs[-1][0], runs[-1][1] + 1)
        else:
            runs.append((index, 1))
    return runs


class PageStore:
    """A sparse page-indexed store with rights and dirty tracking.

    All offsets are byte offsets into the backing object; pages are
    :data:`repro.types.PAGE_SIZE` bytes.  Missing pages are faulted in by
    the owner via the ``fault`` callback given to :meth:`read` /
    :meth:`write`.

    An optional ``observer`` (an object with ``page_installed(index,
    page)`` / ``page_dropped(index, page)``) is notified whenever a page
    enters or leaves the store — the VMM uses this to maintain its
    resident-page count and eviction queues incrementally instead of
    rescanning every cache per fault.
    """

    __slots__ = ("_pages", "observer")

    def __init__(self, observer: Optional[object] = None) -> None:
        self._pages: Dict[int, CachedPage] = {}
        self.observer = observer

    def _note_install(self, index: int, page: CachedPage) -> None:
        if self.observer is not None:
            self.observer.page_installed(index, page)

    def _note_drop(self, index: int, page: CachedPage) -> None:
        if self.observer is not None:
            self.observer.page_dropped(index, page)

    # --- introspection ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, index: int) -> bool:
        return index in self._pages

    def get(self, index: int) -> Optional[CachedPage]:
        return self._pages.get(index)

    def pages(self) -> Iterator[Tuple[int, CachedPage]]:
        return iter(sorted(self._pages.items()))

    def dirty_pages(self) -> List[Tuple[int, CachedPage]]:
        return [(i, p) for i, p in sorted(self._pages.items()) if p.dirty]

    def dirty_runs(self) -> List[List[Tuple[int, CachedPage]]]:
        """Dirty pages coalesced into contiguous ascending runs — one
        ranged write-back per run.  A clean (or absent) page between two
        dirty ones splits the run."""
        return coalesce_runs(self.dirty_pages())

    def resident_bytes(self) -> int:
        return len(self._pages) * PAGE_SIZE

    def _tracked_pages(self, offset: int, size: int):
        """Resident pages intersecting the byte range.  Coherency actions
        may cover 'the whole file' (size 2**62); iterate resident keys,
        never the raw page range."""
        if size <= 0:
            return []
        first = offset // PAGE_SIZE
        last = (offset + size - 1) // PAGE_SIZE
        return [p for p in self._pages if first <= p <= last]

    # --- page-level mutation ----------------------------------------------
    def install(
        self, index: int, data: bytes, rights: AccessRights, dirty: bool = False
    ) -> CachedPage:
        """Install (or replace) a page.  ``data`` shorter than a page is
        zero-padded — pagers return short data at EOF.

        Replacing a resident page reuses its backing buffer in place (no
        allocation, no observer churn); views of the old contents observe
        the new bytes, per the valid-until-next-mutation contract.
        """
        length = len(data)
        page = self._pages.get(index)
        if page is not None:
            buf = page.data
            buf[:length] = data
            if length < PAGE_SIZE:
                buf[length:] = ZERO_VIEW[length:]
            page.rights = rights
            page.dirty = dirty
            return page
        buf = bytearray(PAGE_SIZE)
        buf[:length] = data
        page = CachedPage(buf, rights, dirty)
        self._pages[index] = page
        self._note_install(index, page)
        return page

    def drop(self, index: int) -> Optional[CachedPage]:
        page = self._pages.pop(index, None)
        if page is not None:
            self._note_drop(index, page)
        return page

    def drop_range(self, offset: int, size: int) -> List[Tuple[int, CachedPage]]:
        dropped = []
        for index in sorted(self._tracked_pages(offset, size)):
            page = self._pages.pop(index)
            self._note_drop(index, page)
            dropped.append((index, page))
        return dropped

    def zero_range(self, offset: int, size: int) -> None:
        """Mark a byte range as zero-filled (paper Appendix A zero_fill).
        Present pages are zeroed in place and marked clean; absent pages
        are installed as clean read-only zeros."""
        for index in page_range(offset, size):
            page = self._pages.get(index)
            if page is None:
                self.install(index, b"", AccessRights.READ_ONLY)
            else:
                page.data[:] = ZERO_PAGE
                page.dirty = False

    # --- coherency-action helpers ------------------------------------------
    def collect_modified(self, offset: int, size: int) -> Dict[int, bytes]:
        """Data of dirty pages in the range, keyed by page index.

        Returns *copies*, not views: recalled data crosses a coherency
        boundary and is retained (merged, replayed, pushed down) after
        the source pages have been dropped or mutated — the canonical
        copy-on-retain site."""
        modified = {}
        for index in self._tracked_pages(offset, size):
            page = self._pages[index]
            if page.dirty:
                modified[index] = bytes(page.data)
        return modified

    def clean_range(self, offset: int, size: int) -> None:
        for index in self._tracked_pages(offset, size):
            self._pages[index].dirty = False

    def downgrade_range(self, offset: int, size: int) -> None:
        """RW -> RO over the byte range (deny_writes)."""
        for index in self._tracked_pages(offset, size):
            self._pages[index].rights = AccessRights.READ_ONLY

    def truncate_to(self, length: int) -> None:
        """Discard cached data beyond ``length``: whole pages past the
        boundary are dropped; the tail of a partial boundary page is
        zeroed (so a later extension reads zeros, not stale bytes).  Data
        below ``length`` is preserved — unlike drop_range, which would
        discard the whole boundary page."""
        boundary_page, within = divmod(length, PAGE_SIZE)
        for index in [p for p in self._pages if p > boundary_page]:
            self._note_drop(index, self._pages.pop(index))
        if within == 0:
            page = self._pages.pop(boundary_page, None)
            if page is not None:
                self._note_drop(boundary_page, page)
        else:
            page = self._pages.get(boundary_page)
            if page is not None:
                page.data[within:] = ZERO_VIEW[within:]

    def clear(self) -> List[Tuple[int, CachedPage]]:
        everything = sorted(self._pages.items())
        self._pages.clear()
        for index, page in everything:
            self._note_drop(index, page)
        return everything

    # --- byte-range access ---------------------------------------------------
    def read_bytes(
        self,
        offset: int,
        size: int,
        fault: Callable[[int, AccessRights], CachedPage],
    ):
        """Zero-copy read: ``size`` bytes starting at ``offset``.

        A range within one page returns a read-only :class:`memoryview`
        into the page — no allocation, valid until the page is next
        mutated.  Ranges spanning pages materialize exactly once into
        ``bytes``.  Missing pages fault via ``fault(index, READ_ONLY)``.
        """
        if size <= 0:
            return b""
        index, start = divmod(offset, PAGE_SIZE)
        if start + size <= PAGE_SIZE:
            page = self._pages.get(index)
            if page is None:
                page = fault(index, _READ_ONLY)
            return memoryview(page.data).toreadonly()[start : start + size]
        out = bytearray(size)
        filled = 0
        remaining = size
        position = offset
        while remaining > 0:
            index = position // PAGE_SIZE
            page = self._pages.get(index)
            if page is None:
                page = fault(index, _READ_ONLY)
            start = position % PAGE_SIZE
            take = min(PAGE_SIZE - start, remaining)
            out[filled : filled + take] = page.data[start : start + take]
            filled += take
            position += take
            remaining -= take
        return bytes(out)

    def read(
        self,
        offset: int,
        size: int,
        fault: Callable[[int, AccessRights], CachedPage],
    ) -> bytes:
        """Copy ``size`` bytes starting at ``offset`` out of the store,
        calling ``fault(page_index, READ_ONLY)`` for each missing page.
        The result is an immutable ``bytes`` that never aliases the
        store — the retain-safe counterpart of :meth:`read_bytes`."""
        data = self.read_bytes(offset, size, fault)
        if type(data) is bytes:
            return data
        return bytes(data)

    def write(
        self,
        offset: int,
        data: bytes,
        fault: Callable[[int, AccessRights], CachedPage],
    ) -> None:
        """Copy ``data`` into the store starting at ``offset``.

        Every touched page must be writable: missing pages and read-only
        pages are (re)faulted with READ_WRITE via ``fault``; pages are
        marked dirty.
        """
        remaining = len(data)
        position = offset
        consumed = 0
        pages = self._pages
        while remaining > 0:
            index = position // PAGE_SIZE
            page = pages.get(index)
            if page is None or not page.rights.writable:
                page = fault(index, AccessRights.READ_WRITE)
            start = position % PAGE_SIZE
            take = min(PAGE_SIZE - start, remaining)
            page.data[start : start + take] = data[consumed : consumed + take]
            page.dirty = True
            position += take
            consumed += take
            remaining -= take
