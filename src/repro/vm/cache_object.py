"""Cache object interfaces (paper Appendix A).

Cache objects are implemented by cache managers — the VMM is one, and
any pager may act as a cache manager to another pager (paper sec. 4.2) —
and are invoked by pagers to perform coherency actions.

The data-returning operations (`flush_back`, `deny_writes`,
`write_back`) return only the *modified* blocks, as a mapping of page
index to page data (the paper's ``produce data memory`` out-parameter).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.ipc.object import SpringObject
from repro.types import AccessRights

if TYPE_CHECKING:
    from repro.fs.attributes import FileAttributes


class CacheObject(SpringObject, abc.ABC):
    """One cache manager's end of a pager-cache channel."""

    @abc.abstractmethod
    def flush_back(self, offset: int, size: int) -> Dict[int, bytes]:
        """Remove data from the cache and send modified blocks to the
        pager."""

    @abc.abstractmethod
    def deny_writes(self, offset: int, size: int) -> Dict[int, bytes]:
        """Downgrade read-write blocks to read-only and return modified
        blocks to the pager."""

    @abc.abstractmethod
    def write_back(self, offset: int, size: int) -> Dict[int, bytes]:
        """Return modified blocks to the pager.  Data is retained in the
        cache in the same mode as before the call."""

    @abc.abstractmethod
    def delete_range(self, offset: int, size: int) -> None:
        """Remove data from the cache — no data is returned."""

    @abc.abstractmethod
    def zero_fill(self, offset: int, size: int) -> None:
        """Indicate that a particular range of the cache is zero-filled."""

    @abc.abstractmethod
    def populate(
        self, offset: int, size: int, access: AccessRights, data: bytes
    ) -> None:
        """Introduce data into the cache."""

    @abc.abstractmethod
    def destroy_cache(self) -> None:
        """Tear down the cache; the channel is dead afterwards."""

    def held_blocks(self) -> Optional[Dict[int, Tuple[bool, bool]]]:
        """Report the pages this cache currently holds, as
        ``{page index: (writable, dirty)}`` — the client's half of
        server crash recovery: a recovering pager that lost its holder
        table asks each surviving channel to re-declare its holds.
        The default returns None ("cannot report"); such a channel is
        treated as holding nothing after a crash."""
        return None


class FsCache(CacheObject):
    """Cache object subclass exported by file systems (paper sec. 4.3).

    A pager that successfully narrows a received cache object to
    ``fs_cache`` knows it is talking to a file system and engages it in
    the file-attribute coherency protocol; otherwise it assumes a simple
    cache manager such as a VMM.
    """

    @abc.abstractmethod
    def invalidate_attributes(self) -> None:
        """Drop any cached attributes; the next use must re-fetch."""

    @abc.abstractmethod
    def write_back_attributes(self) -> Optional["FileAttributes"]:
        """Return locally modified attributes (or None if clean), keeping
        the cached copy."""
