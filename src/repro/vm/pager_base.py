"""Pager-side channel bookkeeping.

Every pager in the system — the disk layer, the coherency layer, COMPFS,
DFS — must implement the same bind-time handshake (paper sec. 3.3.2):

    "When a pager receives a bind operation from a VMM, it must determine
    if there is already a pager-cache object connection for the memory
    object at the given VMM.  If there is no connection, the pager
    contacts the VMM, and the VMM and the pager exchange pager, cache,
    and cache_rights objects."

:class:`ChannelRegistry` implements that determination and exchange once
for all of them, keyed by (source, cache manager), so equivalent memory
objects bound by the same cache manager share one channel — and hence
one set of cached pages.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Tuple

from repro.vm.channel import Channel
from repro.vm.memory_object import CacheManager
from repro.vm.pager_object import PagerObject


class ChannelRegistry:
    """Channels a pager has open, keyed by (source key, cache manager)."""

    def __init__(self) -> None:
        self._channels: Dict[Tuple[Hashable, int], Channel] = {}

    def get_or_create(
        self,
        source_key: Hashable,
        cache_manager: CacheManager,
        make_pager_object: Callable[[], PagerObject],
        label: str,
    ) -> Tuple[Channel, bool]:
        """Find the existing channel for ``source_key`` at
        ``cache_manager``, or run the exchange to create one.

        Returns ``(channel, created)``.
        """
        key = (source_key, cache_manager.oid)
        channel = self._channels.get(key)
        if channel is not None and not channel.closed:
            return channel, False
        pager_object = make_pager_object()
        channel = cache_manager.accept_channel(pager_object, label)
        self._channels[key] = channel
        return channel, True

    def channels_for(self, source_key: Hashable) -> List[Channel]:
        """All live channels for one source — the fan-out set for
        coherency actions."""
        return [
            channel
            for (key, _), channel in self._channels.items()
            if key == source_key and not channel.closed
        ]

    def all_channels(self) -> List[Channel]:
        return [c for c in self._channels.values() if not c.closed]

    def forget(self, channel: Channel) -> None:
        """Drop a channel after the cache manager called
        done_with_pager_object."""
        stale = [k for k, c in self._channels.items() if c is channel]
        for key in stale:
            del self._channels[key]

    def close_all(self) -> None:
        for channel in list(self._channels.values()):
            channel.close()
        self._channels.clear()

    def __len__(self) -> int:
        return len([c for c in self._channels.values() if not c.closed])
