"""Pager-cache channels.

"In order to allow data to be coherently cached by more than one VMM,
there needs to be a two-way connection between the VMM and the provider
of the data. ... In our system we represent this two-way connection as
two objects." (paper sec. 3.3.2)

A :class:`Channel` records one such two-way connection: the pager object
(pager's end, invoked by the cache manager) and the cache object (cache
manager's end, invoked by the pager), plus the cache-rights object the
pager hands back from ``bind``.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional

from repro.ipc.object import SpringObject

if TYPE_CHECKING:
    from repro.vm.cache_object import CacheObject
    from repro.vm.pager_object import PagerObject


class CacheRights(SpringObject):
    """Returned by ``bind`` on a memory object.

    Implemented by the cache manager; used by it "to find a pager-cache
    object connection to use, and to find any pages cached for the memory
    object" (sec. 3.3.2).  Two *equivalent* memory objects yield the same
    cache-rights object, which is how shared caching is achieved.
    """

    def __init__(self, domain, label: str) -> None:
        super().__init__(domain)
        self.label = label
        #: Set by the cache manager when the channel is assembled.
        self.channel: Optional["Channel"] = None


@dataclasses.dataclass(slots=True)
class Channel:
    """One pager-cache object connection for one memory object."""

    pager_object: "PagerObject"
    cache_object: "CacheObject"
    cache_rights: CacheRights
    label: str
    closed: bool = False

    def close(self) -> None:
        """Tear down both ends."""
        if self.closed:
            return
        self.closed = True
        self.pager_object.revoke()
        self.cache_object.revoke()
        self.cache_rights.revoke()


@dataclasses.dataclass(slots=True)
class BindResult:
    """Out-parameters of ``memory_object.bind`` (paper Appendix B)."""

    rights: CacheRights
    offset: int
