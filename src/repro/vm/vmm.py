"""The per-node virtual memory manager.

"A per-node virtual memory manager (VMM) is responsible for handling
mapping, sharing, and caching of local memory.  The VMM depends on
external pagers for accessing backing store and maintaining
inter-machine coherency." (paper sec. 3.3.1)

The VMM is a cache manager (it implements cache objects).  When asked to
map a memory object it calls ``bind`` on it; the returned cache-rights
object locates the per-source :class:`VmCache`, so equivalent memory
objects — and binds forwarded by layers like DFS — share cached pages.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.errors import ChannelClosedError, OutOfRangeError, VmError
from repro.ipc.invocation import operation
from repro.ipc.object import SpringObject
from repro.types import PAGE_SIZE, AccessRights
from repro.vm.cache_object import CacheObject
from repro.vm.channel import CacheRights, Channel
from repro.vm.memory_object import CacheManager, MemoryObject
from repro.vm.page import CachedPage, PageStore
from repro.vm.pager_object import PagerObject


class VmCache:
    """The VMM's cached pages for one bound source (one cache-rights
    object).  Several mappings — from any number of address spaces — may
    share one VmCache; that sharing is local coherency."""

    def __init__(self, vmm: "Vmm", channel_label: str) -> None:
        self.vmm = vmm
        self.label = channel_label
        self.store = PageStore()
        self.channel: Optional[Channel] = None
        self.destroyed = False
        self.mappings = 0
        self._last_fault_index: Optional[int] = None

    @property
    def pager(self) -> PagerObject:
        assert self.channel is not None
        return self.channel.pager_object

    def check_live(self) -> None:
        if self.destroyed:
            raise ChannelClosedError(f"cache for {self.label!r} was destroyed")

    # --- faulting ------------------------------------------------------------
    def fault(self, index: int, access: AccessRights) -> CachedPage:
        """Bring a page in from the pager with at least ``access``.

        With read-ahead enabled on the VMM (``vmm.readahead_pages > 0``)
        a sequential fault pattern issues a ranged page-in and installs
        the extra pages speculatively (clean, same access).
        """
        self.check_live()
        world = self.vmm.world
        world.charge.vm_fault()
        world.counters.inc("vmm.fault")
        if self.vmm.capacity_pages is not None:
            self.vmm.reclaim(pages_needed=1, protect=(self, index))
        offset = index * PAGE_SIZE
        window = self.vmm.readahead_pages
        sequential = self._last_fault_index is not None and (
            index == self._last_fault_index + 1
        )
        self._last_fault_index = index
        if window > 0 and sequential:
            world.counters.inc("vmm.readahead")
            data = self.pager.page_in_range(
                offset, PAGE_SIZE, (1 + window) * PAGE_SIZE, access
            )
            extra_pages = max(0, (len(data) - 1) // PAGE_SIZE)
            for i in range(1, extra_pages + 1):
                if (index + i) not in self.store:
                    self.store.install(
                        index + i,
                        data[i * PAGE_SIZE : (i + 1) * PAGE_SIZE],
                        access,
                    )
            # The next fault of a sequential scan lands after the
            # prefetched window; treat it as sequential too.
            self._last_fault_index = index + extra_pages
            return self.store.install(index, data[:PAGE_SIZE], access)
        data = self.pager.page_in(offset, PAGE_SIZE, access)
        return self.store.install(index, data, access)

    # --- write-back ------------------------------------------------------------
    def sync(self) -> int:
        """Push dirty pages to the pager, retaining them in the same
        mode.  Returns the number of pages written."""
        self.check_live()
        dirty = self.store.dirty_pages()
        for index, page in dirty:
            self.pager.sync(index * PAGE_SIZE, PAGE_SIZE, page.snapshot())
            page.dirty = False
        return len(dirty)

    def flush(self) -> int:
        """Push dirty pages and drop everything (page_out semantics)."""
        self.check_live()
        count = 0
        for index, page in self.store.clear():
            if page.dirty:
                self.pager.page_out(index * PAGE_SIZE, PAGE_SIZE, page.snapshot())
                count += 1
        return count


class VmmCacheObject(CacheObject):
    """The VMM's end of one pager-cache channel (paper Appendix A ops
    applied to the corresponding :class:`VmCache`)."""

    def __init__(self, domain, cache: VmCache) -> None:
        super().__init__(domain)
        self.cache = cache

    @operation
    def flush_back(self, offset: int, size: int) -> Dict[int, bytes]:
        modified = self.cache.store.collect_modified(offset, size)
        self.cache.store.drop_range(offset, size)
        self.world.counters.inc("vmm.flush_back")
        return modified

    @operation
    def deny_writes(self, offset: int, size: int) -> Dict[int, bytes]:
        modified = self.cache.store.collect_modified(offset, size)
        self.cache.store.downgrade_range(offset, size)
        self.cache.store.clean_range(offset, size)
        self.world.counters.inc("vmm.deny_writes")
        return modified

    @operation
    def write_back(self, offset: int, size: int) -> Dict[int, bytes]:
        modified = self.cache.store.collect_modified(offset, size)
        self.cache.store.clean_range(offset, size)
        self.world.counters.inc("vmm.write_back")
        return modified

    @operation
    def delete_range(self, offset: int, size: int) -> None:
        self.cache.store.drop_range(offset, size)
        self.world.counters.inc("vmm.delete_range")

    @operation
    def zero_fill(self, offset: int, size: int) -> None:
        self.cache.store.zero_range(offset, size)
        self.world.counters.inc("vmm.zero_fill")

    @operation
    def populate(
        self, offset: int, size: int, access: AccessRights, data: bytes
    ) -> None:
        if offset % PAGE_SIZE != 0:
            raise OutOfRangeError("populate must be page-aligned")
        for i in range((size + PAGE_SIZE - 1) // PAGE_SIZE):
            chunk = data[i * PAGE_SIZE : (i + 1) * PAGE_SIZE]
            self.cache.store.install(offset // PAGE_SIZE + i, chunk, access)
        self.world.counters.inc("vmm.populate")

    @operation
    def destroy_cache(self) -> None:
        self.cache.store.clear()
        self.cache.destroyed = True
        self.world.counters.inc("vmm.destroy_cache")


@dataclasses.dataclass
class Mapping:
    """A memory object mapped into an address space.

    ``read``/``write`` simulate user loads and stores: they touch the
    shared :class:`VmCache` directly (no invocation), faulting missing or
    insufficient pages from the pager.
    """

    address_space: "AddressSpace"
    cache: VmCache
    object_offset: int
    length: int
    access: AccessRights
    unmapped: bool = False

    def _check(self, offset: int, size: int, write: bool) -> None:
        if self.unmapped:
            raise VmError("access through unmapped mapping")
        if write and not self.access.writable:
            raise VmError("write through read-only mapping")
        if offset < 0 or size < 0 or offset + size > self.length:
            raise OutOfRangeError(
                f"[{offset}, {offset + size}) outside mapping of {self.length}"
            )

    def read(self, offset: int, size: int) -> bytes:
        self._check(offset, size, write=False)
        world = self.cache.vmm.world
        data = self.cache.store.read(self.object_offset + offset, size, self.cache.fault)
        world.charge.memcpy(size)
        return data

    def write(self, offset: int, data: bytes) -> None:
        self._check(offset, len(data), write=True)
        world = self.cache.vmm.world
        self.cache.store.write(self.object_offset + offset, data, self.cache.fault)
        world.charge.memcpy(len(data))


class AddressSpace(SpringObject):
    """An address space object, implemented by the VMM (paper 3.3.1)."""

    def __init__(self, vmm: "Vmm", owner_name: str) -> None:
        super().__init__(vmm.domain)
        self.vmm = vmm
        self.owner_name = owner_name
        self.mappings: List[Mapping] = []

    @operation
    def map(
        self,
        memory_object: MemoryObject,
        access: AccessRights,
        offset: int = 0,
        length: Optional[int] = None,
    ) -> Mapping:
        """Map ``memory_object`` into this address space.

        The VMM binds to the memory object; the returned cache-rights
        object selects (or creates) the shared :class:`VmCache`.
        """
        if length is None:
            length = memory_object.get_length() - offset
        if length < 0:
            raise OutOfRangeError("negative mapping length")
        cache = self.vmm.bind_to(memory_object, access, offset, length)
        mapping = Mapping(self, cache, offset, length, access)
        cache.mappings += 1
        self.mappings.append(mapping)
        return mapping

    @operation
    def unmap(self, mapping: Mapping) -> None:
        if mapping.unmapped:
            return
        mapping.unmapped = True
        mapping.cache.mappings -= 1
        self.mappings.remove(mapping)


class Vmm(CacheManager):
    """The per-node VMM: address spaces, mapping, and local page caching."""

    def __init__(self, nucleus_domain) -> None:
        super().__init__(nucleus_domain)
        self._caches_by_rights: Dict[int, VmCache] = {}
        #: Read-ahead window (pages) for sequential fault streams; 0
        #: disables it (the default — it is the paper's sec. 8 extension
        #: and is ablated separately from the Table 2 reproduction).
        self.readahead_pages = 0
        #: Physical-memory bound in pages (None = unlimited).  When
        #: faults would exceed it, the VMM reclaims: clean pages are
        #: dropped, dirty pages written out through their pagers.
        self.capacity_pages: Optional[int] = None
        self.evictions = 0

    # --- cache-manager side of channel setup ----------------------------------
    @operation
    def accept_channel(self, pager_object: PagerObject, label: str) -> Channel:
        cache = VmCache(self, label)
        cache_object = VmmCacheObject(self.domain, cache)
        rights = CacheRights(self.domain, label)
        channel = Channel(pager_object, cache_object, rights, label)
        rights.channel = channel
        cache.channel = channel
        self._caches_by_rights[rights.oid] = cache
        self.world.counters.inc("vmm.channel_created")
        return channel

    # --- mapping support --------------------------------------------------------
    def bind_to(
        self,
        memory_object: MemoryObject,
        access: AccessRights,
        offset: int,
        length: int,
    ) -> VmCache:
        """Bind to a memory object and return the VmCache its cache-rights
        object designates."""
        self.world.charge.bind()
        result = memory_object.bind(self, access, offset, length)
        cache = self._caches_by_rights.get(result.rights.oid)
        if cache is None:
            raise VmError(
                "bind returned cache_rights from a different cache manager"
            )
        cache.check_live()
        return cache

    @operation
    def create_address_space(self, owner_name: str) -> AddressSpace:
        return AddressSpace(self, owner_name)

    # --- maintenance ----------------------------------------------------------
    def sync_all(self) -> int:
        """Write back all dirty pages in all caches (shutdown/test aid)."""
        return sum(
            cache.sync()
            for cache in self._caches_by_rights.values()
            if not cache.destroyed
        )

    def reclaim(
        self,
        pages_needed: int = 1,
        protect: Optional[tuple] = None,
    ) -> int:
        """Free pages until ``pages_needed`` fit under capacity_pages.

        Two passes, deterministic order (caches in creation order, pages
        ascending): clean pages are simply dropped; if that is not
        enough, dirty pages are paged out.  ``protect`` is an optional
        ``(cache, page_index)`` the current fault is about to install —
        that one slot is never chosen as a victim.  Returns the number
        of pages evicted.
        """
        if self.capacity_pages is None:
            return 0
        target = self.capacity_pages - pages_needed
        evicted = 0

        def over() -> bool:
            return self.resident_pages() > target

        for dirty_pass in (False, True):
            if not over():
                break
            for cache in self.live_caches():
                for index, page in list(cache.store.pages()):
                    if not over():
                        break
                    if protect is not None and (cache, index) == protect:
                        continue
                    if page.dirty != dirty_pass:
                        continue
                    if page.dirty:
                        cache.pager.page_out(
                            index * PAGE_SIZE, PAGE_SIZE, page.snapshot()
                        )
                    cache.store.drop(index)
                    evicted += 1
        self.evictions += evicted
        self.world.counters.inc("vmm.evicted", evicted)
        return evicted

    def cache_for_rights(self, rights: CacheRights) -> Optional[VmCache]:
        return self._caches_by_rights.get(rights.oid)

    def live_caches(self) -> List[VmCache]:
        return [c for c in self._caches_by_rights.values() if not c.destroyed]

    def resident_pages(self) -> int:
        return sum(len(c.store) for c in self.live_caches())
