"""The per-node virtual memory manager.

"A per-node virtual memory manager (VMM) is responsible for handling
mapping, sharing, and caching of local memory.  The VMM depends on
external pagers for accessing backing store and maintaining
inter-machine coherency." (paper sec. 3.3.1)

The VMM is a cache manager (it implements cache objects).  When asked to
map a memory object it calls ``bind`` on it; the returned cache-rights
object locates the per-source :class:`VmCache`, so equivalent memory
objects — and binds forwarded by layers like DFS — share cached pages.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.errors import ChannelClosedError, OutOfRangeError, VmError
from repro.ipc.invocation import operation
from repro.ipc.object import SpringObject
from repro.types import PAGE_SIZE, AccessRights
from repro.vm.cache_object import CacheObject
from repro.vm.channel import CacheRights, Channel
from repro.vm.memory_object import CacheManager, MemoryObject
from repro.vm.page import CachedPage, PageStore, coalesce_runs
from repro.vm.pager_object import PagerObject
from repro.vm.readahead import StreamTable


class VmCache:
    """The VMM's cached pages for one bound source (one cache-rights
    object).  Several mappings — from any number of address spaces — may
    share one VmCache; that sharing is local coherency."""

    __slots__ = (
        "vmm",
        "world",
        "label",
        "store",
        "channel",
        "destroyed",
        "mappings",
        "streams",
        "readahead_override",
    )

    def __init__(self, vmm: "Vmm", channel_label: str) -> None:
        self.vmm = vmm
        self.world = vmm.world
        self.label = channel_label
        self.store = PageStore(observer=self)
        self.channel: Optional[Channel] = None
        self.destroyed = False
        self.mappings = 0
        self.streams = StreamTable()
        #: Per-cache read-ahead window; None means use the node-wide
        #: ``vmm.readahead_pages``.  Layers that map files through the
        #: VMM (CFS) set this to get read-ahead on their own traffic
        #: without changing the node's global policy.
        self.readahead_override: Optional[int] = None

    @property
    def pager(self) -> PagerObject:
        assert self.channel is not None
        return self.channel.pager_object

    def check_live(self) -> None:
        if self.destroyed:
            raise ChannelClosedError(f"cache for {self.label!r} was destroyed")

    # --- PageStore observer (incremental residency accounting) ---------------
    def page_installed(self, index: int, page: CachedPage) -> None:
        self.vmm._page_installed(self, index, page)

    def page_dropped(self, index: int, page: CachedPage) -> None:
        self.vmm._page_dropped(self, index)

    # --- faulting ------------------------------------------------------------
    def fault(self, index: int, access: AccessRights) -> CachedPage:
        """Bring a page in from the pager with at least ``access``.

        With read-ahead enabled on the VMM (``vmm.readahead_pages > 0``)
        a sequential fault pattern issues a ranged page-in and installs
        the extra pages speculatively (clean, same access).
        """
        self.check_live()
        world = self.world
        world.charge.vm_fault()
        world.counters.inc("vmm.fault")
        offset = index * PAGE_SIZE
        window = self.readahead_override
        if window is None:
            window = self.vmm.readahead_pages
        sequential = self.streams.observe(index)
        prefetching = window > 0 and sequential
        if self.vmm.capacity_pages is not None:
            # Reserve room for the whole window, not just the faulting
            # page — otherwise a prefetch overshoots capacity_pages.
            want = 1 + (window if prefetching else 0)
            self.vmm.reclaim(
                pages_needed=min(want, self.vmm.capacity_pages),
                protect=(self, index),
            )
        if prefetching:
            world.counters.inc("vmm.readahead")
            data = self.pager.page_in_range(
                offset, PAGE_SIZE, (1 + window) * PAGE_SIZE, access
            )
            page = self.store.install(index, data[:PAGE_SIZE], access)
            extra_pages = max(0, (len(data) - 1) // PAGE_SIZE)
            installed_through = index
            for i in range(1, extra_pages + 1):
                if (
                    self.vmm.capacity_pages is not None
                    and self.vmm.resident_pages() >= self.vmm.capacity_pages
                ):
                    break  # never install speculative pages past the bound
                if (index + i) not in self.store:
                    self.store.install(
                        index + i,
                        data[i * PAGE_SIZE : (i + 1) * PAGE_SIZE],
                        access,
                    )
                installed_through = index + i
            # The next fault of this scan lands after the prefetched
            # window; move the stream head so it still looks sequential.
            self.streams.advance_head(installed_through)
            return page
        data = self.pager.page_in(offset, PAGE_SIZE, access)
        return self.store.install(index, data, access)

    # --- write-back ------------------------------------------------------------
    def sync(self) -> int:
        """Push dirty pages to the pager, retaining them in the same
        mode.  Returns the number of pages written.

        Write-back order is deterministic either way — dirty pages
        ascend by index, and with ``vmm.batch_pageout`` set, contiguous
        runs go out as single ranged calls in the same ascending order.
        Benchmarks rely on this determinism for stable virtual time.
        """
        self.check_live()
        if self.vmm.batch_pageout:
            runs = self.store.dirty_runs()
            assert all(
                a[-1][0] < b[0][0] for a, b in zip(runs, runs[1:])
            ), "dirty runs must ascend"
            count = 0
            for run in runs:
                data = b"".join(page.snapshot() for _, page in run)
                self.pager.sync_range(run[0][0] * PAGE_SIZE, len(data), data)
                for _, page in run:
                    page.dirty = False
                count += len(run)
            return count
        dirty = self.store.dirty_pages()
        pager_sync = self.pager.sync
        for index, page in dirty:
            pager_sync(index * PAGE_SIZE, PAGE_SIZE, page.snapshot())
            page.dirty = False
        return len(dirty)

    def flush(self) -> int:
        """Push dirty pages and drop everything (page_out semantics).
        Like :meth:`sync`, ascending order; batched into runs when
        ``vmm.batch_pageout`` is set."""
        self.check_live()
        dropped = self.store.clear()
        dirty = [(index, page) for index, page in dropped if page.dirty]
        if self.vmm.batch_pageout:
            for run in coalesce_runs(dirty):
                data = b"".join(page.snapshot() for _, page in run)
                self.pager.page_out_range(run[0][0] * PAGE_SIZE, len(data), data)
            return len(dirty)
        for index, page in dirty:
            self.pager.page_out(index * PAGE_SIZE, PAGE_SIZE, page.snapshot())
        return len(dirty)


class VmmCacheObject(CacheObject):
    """The VMM's end of one pager-cache channel (paper Appendix A ops
    applied to the corresponding :class:`VmCache`)."""

    def __init__(self, domain, cache: VmCache) -> None:
        super().__init__(domain)
        self.cache = cache

    @operation
    def flush_back(self, offset: int, size: int) -> Dict[int, bytes]:
        modified = self.cache.store.collect_modified(offset, size)
        self.cache.store.drop_range(offset, size)
        self.world.counters.inc("vmm.flush_back")
        return modified

    @operation
    def deny_writes(self, offset: int, size: int) -> Dict[int, bytes]:
        modified = self.cache.store.collect_modified(offset, size)
        self.cache.store.downgrade_range(offset, size)
        self.cache.store.clean_range(offset, size)
        self.world.counters.inc("vmm.deny_writes")
        return modified

    @operation
    def write_back(self, offset: int, size: int) -> Dict[int, bytes]:
        modified = self.cache.store.collect_modified(offset, size)
        self.cache.store.clean_range(offset, size)
        self.world.counters.inc("vmm.write_back")
        return modified

    @operation
    def delete_range(self, offset: int, size: int) -> None:
        self.cache.store.drop_range(offset, size)
        self.world.counters.inc("vmm.delete_range")

    @operation
    def zero_fill(self, offset: int, size: int) -> None:
        self.cache.store.zero_range(offset, size)
        self.world.counters.inc("vmm.zero_fill")

    @operation
    def populate(
        self, offset: int, size: int, access: AccessRights, data: bytes
    ) -> None:
        if offset % PAGE_SIZE != 0:
            raise OutOfRangeError("populate must be page-aligned")
        for i in range((size + PAGE_SIZE - 1) // PAGE_SIZE):
            chunk = data[i * PAGE_SIZE : (i + 1) * PAGE_SIZE]
            self.cache.store.install(offset // PAGE_SIZE + i, chunk, access)
        self.world.counters.inc("vmm.populate")

    @operation
    def destroy_cache(self) -> None:
        self.cache.store.clear()
        self.cache.destroyed = True
        self.world.counters.inc("vmm.destroy_cache")

    @operation
    def held_blocks(self) -> Dict[int, Tuple[bool, bool]]:
        """Re-declare this VMM's resident pages to a recovering pager
        (see :meth:`repro.vm.cache_object.CacheObject.held_blocks`)."""
        self.world.counters.inc("vmm.held_blocks")
        return {
            index: (page.rights.writable, page.dirty)
            for index, page in self.cache.store.pages()
        }


@dataclasses.dataclass(slots=True)
class Mapping:
    """A memory object mapped into an address space.

    ``read``/``write`` simulate user loads and stores: they touch the
    shared :class:`VmCache` directly (no invocation), faulting missing or
    insufficient pages from the pager.

    ``read`` has mapped-memory semantics: like a load from a mapped
    page, the result may be a read-only :class:`memoryview` aliasing the
    shared cache, valid until the page is next written or evicted.
    Callers that retain the data (or hand it across an API whose
    contract is immutable ``bytes``, like ``File.read``) must copy —
    see DESIGN.md section 7.
    """

    address_space: "AddressSpace"
    cache: VmCache
    object_offset: int
    length: int
    access: AccessRights
    unmapped: bool = False
    # Per-access dispatch targets, resolved once at map time: the fault
    # handler, store accessors, and memcpy charger are invariant for the
    # mapping's lifetime, so reads skip the attribute chains entirely.
    _read_bytes: object = dataclasses.field(init=False, repr=False, default=None)
    _store_write: object = dataclasses.field(init=False, repr=False, default=None)
    _fault: object = dataclasses.field(init=False, repr=False, default=None)
    _memcpy: object = dataclasses.field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        store = self.cache.store
        self._read_bytes = store.read_bytes
        self._store_write = store.write
        self._fault = self.cache.fault
        self._memcpy = self.cache.world.charge.memcpy

    def _check(self, offset: int, size: int, write: bool) -> None:
        if self.unmapped:
            raise VmError("access through unmapped mapping")
        if write and not self.access.writable:
            raise VmError("write through read-only mapping")
        if offset < 0 or size < 0 or offset + size > self.length:
            raise OutOfRangeError(
                f"[{offset}, {offset + size}) outside mapping of {self.length}"
            )

    def read(self, offset: int, size: int):
        if self.unmapped or offset < 0 or size < 0 or offset + size > self.length:
            self._check(offset, size, write=False)
        data = self._read_bytes(self.object_offset + offset, size, self._fault)
        self._memcpy(size)
        return data

    def read_copy(self, offset: int, size: int) -> bytes:
        """Like :meth:`read` but always an immutable ``bytes`` copy —
        the retain-safe variant."""
        data = self.read(offset, size)
        if type(data) is bytes:
            return data
        return bytes(data)

    def write(self, offset: int, data: bytes) -> None:
        size = len(data)
        if (
            self.unmapped
            or not self.access.writable
            or offset < 0
            or offset + size > self.length
        ):
            self._check(offset, size, write=True)
        self._store_write(self.object_offset + offset, data, self._fault)
        self._memcpy(size)


class AddressSpace(SpringObject):
    """An address space object, implemented by the VMM (paper 3.3.1)."""

    def __init__(self, vmm: "Vmm", owner_name: str) -> None:
        super().__init__(vmm.domain)
        self.vmm = vmm
        self.owner_name = owner_name
        self.mappings: List[Mapping] = []

    @operation
    def map(
        self,
        memory_object: MemoryObject,
        access: AccessRights,
        offset: int = 0,
        length: Optional[int] = None,
    ) -> Mapping:
        """Map ``memory_object`` into this address space.

        The VMM binds to the memory object; the returned cache-rights
        object selects (or creates) the shared :class:`VmCache`.
        """
        if length is None:
            length = memory_object.get_length() - offset
        if length < 0:
            raise OutOfRangeError("negative mapping length")
        cache = self.vmm.bind_to(memory_object, access, offset, length)
        mapping = Mapping(self, cache, offset, length, access)
        cache.mappings += 1
        self.mappings.append(mapping)
        return mapping

    @operation
    def unmap(self, mapping: Mapping) -> None:
        if mapping.unmapped:
            return
        mapping.unmapped = True
        mapping.cache.mappings -= 1
        self.mappings.remove(mapping)


class Vmm(CacheManager):
    """The per-node VMM: address spaces, mapping, and local page caching."""

    def __init__(self, nucleus_domain) -> None:
        super().__init__(nucleus_domain)
        self._caches_by_rights: Dict[int, VmCache] = {}
        #: Read-ahead window (pages) for sequential fault streams; 0
        #: disables it (the default — it is the paper's sec. 8 extension
        #: and is ablated separately from the Table 2 reproduction).
        self.readahead_pages = 0
        #: Physical-memory bound in pages (None = unlimited).  When
        #: faults would exceed it, the VMM reclaims: clean pages are
        #: dropped, dirty pages written out through their pagers.
        self.capacity_pages: Optional[int] = None
        self.evictions = 0
        #: Coalesce contiguous dirty pages into ranged pager calls on
        #: sync/flush/eviction.  Off by default — like readahead_pages,
        #: it is a sec. 8-style extension ablated separately from the
        #: Table 2/3 reproduction, whose calibration assumes per-page
        #: write-back.
        self.batch_pageout = False
        #: Resident pages across all caches, maintained incrementally by
        #: the PageStore observer hooks (never recomputed by scanning).
        self._resident = 0
        #: Eviction clock: FIFO queues of (cache, index) in installation
        #: order, clean candidates separate from dirty ones.  Entries
        #: are validated lazily on pop (see :meth:`reclaim`); the set
        #: tracks which (cache, index) pairs are genuinely resident so
        #: stale queue entries can be recognized in O(1).
        self._clean_q: Deque[Tuple[VmCache, int]] = collections.deque()
        self._dirty_q: Deque[Tuple[VmCache, int]] = collections.deque()
        self._queued: Set[Tuple[VmCache, int]] = set()

    # --- residency accounting (PageStore observer plumbing) -------------------
    def _page_installed(self, cache: VmCache, index: int, page: CachedPage) -> None:
        self._resident += 1
        key = (cache, index)
        if key not in self._queued:
            self._queued.add(key)
            (self._dirty_q if page.dirty else self._clean_q).append(key)

    def _page_dropped(self, cache: VmCache, index: int) -> None:
        self._resident -= 1
        # The queue entry (if any) goes stale; reclaim discards it on pop.
        self._queued.discard((cache, index))

    # --- cache-manager side of channel setup ----------------------------------
    @operation
    def accept_channel(self, pager_object: PagerObject, label: str) -> Channel:
        cache = VmCache(self, label)
        cache_object = VmmCacheObject(self.domain, cache)
        rights = CacheRights(self.domain, label)
        channel = Channel(pager_object, cache_object, rights, label)
        rights.channel = channel
        cache.channel = channel
        self._caches_by_rights[rights.oid] = cache
        self.world.counters.inc("vmm.channel_created")
        return channel

    # --- mapping support --------------------------------------------------------
    def bind_to(
        self,
        memory_object: MemoryObject,
        access: AccessRights,
        offset: int,
        length: int,
    ) -> VmCache:
        """Bind to a memory object and return the VmCache its cache-rights
        object designates."""
        self.world.charge.bind()
        result = memory_object.bind(self, access, offset, length)
        cache = self._caches_by_rights.get(result.rights.oid)
        if cache is None:
            raise VmError(
                "bind returned cache_rights from a different cache manager"
            )
        cache.check_live()
        return cache

    @operation
    def create_address_space(self, owner_name: str) -> AddressSpace:
        return AddressSpace(self, owner_name)

    # --- maintenance ----------------------------------------------------------
    def sync_all(self) -> int:
        """Write back all dirty pages in all caches (shutdown/test aid).

        Deterministic order: caches in creation (bind) order, and within
        each cache :meth:`VmCache.sync`'s ascending page order — the
        run-coalescing rewrite preserves both, so repeated runs charge
        identical virtual time."""
        return sum(
            cache.sync()
            for cache in self._caches_by_rights.values()
            if not cache.destroyed
        )

    def reclaim(
        self,
        pages_needed: int = 1,
        protect: Optional[tuple] = None,
    ) -> int:
        """Free pages until ``pages_needed`` fit under capacity_pages.

        Victims come from the two FIFO eviction queues maintained by the
        PageStore observer hooks — clean pages first (dropped for free),
        then dirty pages (paged out, coalesced into ranged calls when
        ``batch_pageout`` is set).  The queues are validated lazily:
        entries for pages that were dropped since enqueue are discarded
        on pop, and an entry whose page changed dirtiness migrates to
        the other queue.  Each entry is touched at most a constant
        number of times over its lifetime, so eviction is amortized O(1)
        per fault — the previous implementation re-walked every resident
        page of every cache on every fault.

        ``protect`` is an optional ``(cache, page_index)`` the current
        fault is about to install — never chosen as a victim (requeued
        at the tail).  Returns the number of pages evicted.
        """
        if self.capacity_pages is None:
            return 0
        target = self.capacity_pages - pages_needed
        evicted = 0

        # Pass 1: drop clean pages, oldest-installed first.
        queue = self._clean_q
        budget = len(queue) + 2  # slack: protect may be requeued once
        while budget > 0 and queue and self._resident > target:
            budget -= 1
            key = queue.popleft()
            if key not in self._queued:
                continue  # stale: dropped since enqueue
            cache, index = key
            page = cache.store.get(index)
            if page is None or cache.destroyed:
                self._queued.discard(key)
                continue
            if key == protect:
                queue.append(key)
                continue
            if page.dirty:
                self._dirty_q.append(key)  # dirtied since enqueue: migrate
                continue
            cache.store.drop(index)  # observer updates _resident/_queued
            evicted += 1

        # Pass 2: page out dirty pages.
        if self._resident > target:
            queue = self._dirty_q
            budget = len(queue) + 2
            victims: List[Tuple[VmCache, int, CachedPage]] = []
            while budget > 0 and queue and self._resident - len(victims) > target:
                budget -= 1
                key = queue.popleft()
                if key not in self._queued:
                    continue
                cache, index = key
                page = cache.store.get(index)
                if page is None or cache.destroyed:
                    self._queued.discard(key)
                    continue
                if key == protect:
                    queue.append(key)
                    continue
                if not page.dirty:
                    self._clean_q.append(key)  # cleaned since enqueue
                    continue
                victims.append((cache, index, page))
            evicted += self._evict_dirty(victims)

        self.evictions += evicted
        self.world.counters.inc("vmm.evicted", evicted)
        return evicted

    def _evict_dirty(self, victims: List[Tuple[VmCache, int, CachedPage]]) -> int:
        """Page out and drop the chosen dirty victims.  With
        ``batch_pageout`` set, contiguous victims of one cache go out as
        single ranged calls."""
        if not self.batch_pageout:
            for cache, index, page in victims:
                cache.pager.page_out(index * PAGE_SIZE, PAGE_SIZE, page.snapshot())
                cache.store.drop(index)
            return len(victims)
        by_cache: Dict[VmCache, List[Tuple[int, CachedPage]]] = {}
        for cache, index, page in victims:
            by_cache.setdefault(cache, []).append((index, page))
        for cache, pairs in by_cache.items():
            pairs.sort(key=lambda pair: pair[0])
            for run in coalesce_runs(pairs):
                data = b"".join(page.snapshot() for _, page in run)
                cache.pager.page_out_range(run[0][0] * PAGE_SIZE, len(data), data)
                for index, _ in run:
                    cache.store.drop(index)
        return len(victims)

    def cache_for_rights(self, rights: CacheRights) -> Optional[VmCache]:
        return self._caches_by_rights.get(rights.oid)

    def live_caches(self) -> List[VmCache]:
        return [c for c in self._caches_by_rights.values() if not c.destroyed]

    def resident_pages(self) -> int:
        """Resident pages across all caches — an O(1) read of the
        incrementally maintained counter."""
        return self._resident
