"""Sequential-stream detection for read-ahead policies.

A single "last fault index" scalar recognizes one sequential reader,
but two interleaved sequential streams on a shared cache (two clients
scanning different regions of the same file) alternate faults and never
look sequential to it.  :class:`StreamTable` keeps a small fixed-size
table of recent stream heads instead — the classic multi-stream
read-ahead detector — so each stream advances its own head.
"""

from __future__ import annotations

from typing import List


class StreamTable:
    """Fixed-capacity table of recent sequential-stream heads.

    ``observe(index)`` reports whether the fault at ``index`` continues
    any tracked stream (some stream's head is ``index - 1``).  Unmatched
    faults start a new candidate stream, evicting the oldest when the
    table is full — so purely random access cycles candidates through
    the table without ever producing a hit.
    """

    __slots__ = ("capacity", "_heads")

    def __init__(self, capacity: int = 4) -> None:
        self.capacity = capacity
        self._heads: List[int] = []

    def observe(self, index: int) -> bool:
        """Record a fault at page ``index``; True if it is sequential
        with respect to one of the tracked streams."""
        try:
            position = self._heads.index(index - 1)
        except ValueError:
            self._heads.append(index)
            if len(self._heads) > self.capacity:
                self._heads.pop(0)
            return False
        self._heads.pop(position)
        self._heads.append(index)
        return True

    def advance_head(self, head: int) -> None:
        """Move the most recently matched stream's head to ``head`` — a
        prefetch consumed pages up to it, so the next fault of that scan
        lands at ``head + 1`` and must still look sequential."""
        if self._heads:
            self._heads[-1] = head

    def reset(self) -> None:
        self._heads.clear()
