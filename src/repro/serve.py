"""Host a Spring file-system stack for out-of-process TCP clients.

``python -m repro.serve`` turns one simulated installation into a real
server process: it builds a World, assembles an SFS (or a two-node
DFS-backed) stack, wraps a POSIX-style facade in a wire-safe
:class:`FileService`, and serves it over the
:class:`~repro.ipc.transport.SocketServer` framing until a client calls
``control.shutdown()`` (or the process is signalled).

On startup it prints a single machine-readable line to stdout::

    REPRO-SERVE READY host=127.0.0.1 port=43210 stack=dfs

which is how ``examples/two_process_dfs.py`` (and the CI job wrapping
it) learns the OS-assigned port.  Everything the service returns is
deterministic — file bytes, attribute snapshots stamped in *virtual*
time, simulated message counts — so a scripted client produces
byte-identical transcripts run after run, even though the transport
underneath is a real TCP connection.
"""

from __future__ import annotations

import argparse
import asyncio
from typing import List, Optional

from repro.fs.attributes import FileAttributes
from repro.unix.posixlike import (
    O_CREAT,
    O_RDONLY,
    O_TRUNC,
    O_WRONLY,
    Posix,
)
from repro.world import World

STACKS = ("sfs", "dfs")


class FileService:
    """Wire-safe, path-and-fd file API over a :class:`Posix` facade.

    Every operation takes and returns only wire-encodable values (the
    one non-scalar is :class:`~repro.fs.attributes.FileAttributes`,
    which is a registered wire struct), so the whole surface is
    servable and batchable.  ``read_file``/``write_file`` are whole-file
    conveniences that keep remote round trips — and the two-process
    demo — compact.
    """

    #: Ops that are safe to resend if a reply is lost: they either
    #: don't mutate, or overwrite idempotently.  Clients pass these to
    #: RemoteStub so mid-invoke crash retries stay correct.
    IDEMPOTENT_OPS = (
        "stat", "fstat", "pread", "listdir", "read_file", "open_fds",
    )

    def __init__(self, posix: Posix) -> None:
        self._posix = posix

    # --- fd surface -----------------------------------------------------
    def open(self, path: str, flags: int = O_RDONLY) -> int:
        return self._posix.open(path, flags)

    def close(self, fd: int) -> None:
        return self._posix.close(fd)

    def read(self, fd: int, size: int) -> bytes:
        return self._posix.read(fd, size)

    def write(self, fd: int, data: bytes) -> int:
        return self._posix.write(fd, bytes(data))

    def pread(self, fd: int, size: int, offset: int) -> bytes:
        return self._posix.pread(fd, size, offset)

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        return self._posix.pwrite(fd, bytes(data), offset)

    def lseek(self, fd: int, offset: int, whence: int = 0) -> int:
        return self._posix.lseek(fd, offset, whence)

    def ftruncate(self, fd: int, length: int) -> None:
        return self._posix.ftruncate(fd, length)

    def fsync(self, fd: int) -> None:
        return self._posix.fsync(fd)

    def fstat(self, fd: int) -> FileAttributes:
        return self._posix.fstat(fd)

    def open_fds(self) -> int:
        return self._posix.open_fds()

    # --- path surface ---------------------------------------------------
    def stat(self, path: str) -> FileAttributes:
        return self._posix.stat(path)

    def mkdir(self, path: str) -> None:
        self._posix.mkdir(path)

    def unlink(self, path: str) -> None:
        self._posix.unlink(path)

    def listdir(self, path: str = "") -> List[str]:
        return sorted(self._posix.listdir(path))

    def rename(self, old: str, new: str) -> None:
        self._posix.rename(old, new)

    def write_file(self, path: str, data: bytes) -> int:
        fd = self._posix.open(path, O_WRONLY | O_CREAT | O_TRUNC)
        try:
            return self._posix.write(fd, bytes(data))
        finally:
            self._posix.close(fd)

    def read_file(self, path: str) -> bytes:
        fd = self._posix.open(path, O_RDONLY)
        try:
            size = self._posix.fstat(fd).size
            return self._posix.pread(fd, size, 0)
        finally:
            self._posix.close(fd)


class Control:
    """Server-side control surface: liveness, telemetry, shutdown."""

    def __init__(self, world: World, server=None) -> None:
        self._world = world
        self._server = server

    def ping(self) -> str:
        return "pong"

    def stats(self) -> dict:
        """Deterministic serving telemetry: what the *simulated* stack
        behind the wire did on this server's behalf."""
        network = self._world.network
        counters = self._world.counters
        return {
            "sim_messages": network.messages,
            "sim_bytes_moved": network.bytes_moved,
            "invoke_network": counters.get("invoke.network"),
            "invoke_cross_domain": counters.get("invoke.cross_domain"),
        }

    def shutdown(self) -> str:
        if self._server is not None:
            self._server.request_shutdown()
        return "bye"


def build_service(stack: str = "sfs", blocks: int = 4096):
    """Build the served world: returns ``(world, node, service)`` where
    ``node`` is the node whose exports will face the wire.

    ``sfs``
        One node, the classic two-domain SFS (coherency on disk layer).

    ``dfs``
        Two simulated nodes: ``storage`` exports its SFS through DFS and
        ``gateway`` mounts it remotely — so every wire op additionally
        crosses the *simulated* machine boundary, a Spring stack behind
        a real one (the Lustre client/OST shape).
    """
    from repro.fs import create_sfs, export_dfs, mount_remote
    from repro.storage import BlockDevice

    if stack not in STACKS:
        raise ValueError(f"unknown stack {stack!r}; expected one of {STACKS}")
    world = World()
    if stack == "sfs":
        node = world.create_node("server")
        device = BlockDevice(node.nucleus, "sd0", blocks)
        sfs = create_sfs(node, device)
        root = sfs.top
    else:
        storage = world.create_node("storage")
        node = world.create_node("gateway")
        device = BlockDevice(storage.nucleus, "sd0", blocks)
        sfs = create_sfs(storage, device)
        export_dfs(storage, sfs.top)
        mount_remote(node, storage, "dfs")
        root = node.fs_context.resolve("dfs@storage")
    posix = Posix(root, world.create_user_domain(node, "wire-user"))
    return world, node, FileService(posix)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0: OS-assigned, reported on stdout)",
    )
    parser.add_argument("--stack", choices=STACKS, default="sfs")
    parser.add_argument(
        "--blocks", type=int, default=4096,
        help="size of the backing block device",
    )
    args = parser.parse_args(argv)

    world, node, service = build_service(args.stack, args.blocks)
    server = node.serve(host=args.host, port=args.port)
    node.expose("fs", service)
    node.expose("control", Control(world, server))

    async def amain() -> None:
        port = await server.start()
        print(
            f"REPRO-SERVE READY host={args.host} port={port} "
            f"stack={args.stack}",
            flush=True,
        )
        await server.wait_closed()

    asyncio.run(amain())
    print(
        f"REPRO-SERVE DONE ops={server.ops_served} "
        f"frames={server.frames_in}",
        flush=True,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
