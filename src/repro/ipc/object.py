"""Spring objects.

"A Spring object is an abstraction that contains state and provides a set
of operations to manipulate that state" (paper sec. 3.1).  Objects are
served by exactly one domain; the representation held by other domains is
conceptually an unforgeable nucleus handle — here, simply the Python
reference, with the cost of reaching the server charged per invocation by
:mod:`repro.ipc.invocation`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import RevokedObjectError

if TYPE_CHECKING:
    from repro.ipc.domain import Domain


class SpringObject:
    """Base class for every object exported through a Spring interface.

    Subclasses declare their operations with the ``@operation`` decorator;
    plain (undecorated) methods are implementation-internal and bypass
    invocation accounting.
    """

    def __init__(self, domain: "Domain") -> None:
        self.domain = domain
        self.oid = domain.world.next_oid()
        self._revoked = False

    @property
    def world(self):
        return self.domain.world

    @property
    def revoked(self) -> bool:
        return self._revoked

    def revoke(self) -> None:
        """Destroy the server-side object.  Subsequent operations raise
        :class:`RevokedObjectError` — modelling Spring's consumed/deleted
        object semantics (paper Appendix A passing modes)."""
        self._revoked = True

    def check_live(self) -> None:
        """Raise if the object has been revoked.  For use inside
        non-operation helpers."""
        if self._revoked:
            raise RevokedObjectError(f"{type(self).__name__} {self.oid} is revoked")

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} oid={self.oid} "
            f"domain={self.domain.name!r}>"
        )
