"""Compound remote invocation — several operations, one round trip.

The paper flags the cost of splitting a stack across domains and
machines as per-hop, per-operation round trips (sec. 6.4) and points to
caching as one remedy.  Production distributed file systems went
further: Lustre-style *intent* requests carry a whole lookup+open+attr
chain to the server in a single message.  This module supplies the
transport half of that idea for any Spring object.

Two layers of API:

* :func:`compound_region` — a context manager that *absorbs* the
  network hops issued by the domain that opened it.  Inside the region,
  every cross-node invocation made by that domain skips its individual
  ``Network.transfer`` and instead accumulates (op count, payload
  bytes) per destination node; on exit the region charges **one**
  round trip per destination carrying the summed payload.  Invocations
  on the local/cross-domain paths, and nested invocations made by
  *other* domains (e.g. a server calling further on), are unaffected.
  Reachability is still checked per absorbed op — a partition fails the
  sub-operation *before* its body runs server-side, so a dead link
  never leaves partial server-side state.

* :class:`CompoundInvocation` — an explicit batch: queue bound
  operations with :meth:`~CompoundInvocation.add`, run them with
  :meth:`~CompoundInvocation.commit`, and get a
  :class:`CompoundResult` that demultiplexes per-op results and
  exceptions.  With ``fail_fast`` (the default) a failing sub-op stops
  the batch; the ops after it never execute.

Everything here is opt-in: code that never opens a region or builds a
batch charges exactly what it did before, so the Table 2/3 calibration
is untouched.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import InvocationError
from repro.ipc import invocation


class CompoundSubOpError(InvocationError):
    """One sub-operation of a compound batch failed.

    Carries which sub-op it was (``index``, ``op_name``) and the
    underlying exception (``cause``), so callers can tell exactly where
    a batch stopped.
    """

    def __init__(self, index: int, op_name: str, cause: BaseException) -> None:
        super().__init__(
            f"compound sub-op #{index} ({op_name}) failed: "
            f"{type(cause).__name__}: {cause}"
        )
        self.index = index
        self.op_name = op_name
        self.cause = cause


class _Skipped:
    """Sentinel outcome for sub-ops never executed (fail-fast abort)."""

    def __repr__(self) -> str:  # pragma: no cover - repr only
        return "<skipped>"


SKIPPED = _Skipped()


class CompoundRegion:
    """Absorbs network hops issued by the opening domain (see module
    docstring).  Created via :func:`compound_region`."""

    def __init__(self, world) -> None:
        self.world = world
        #: The domain whose hops this region coalesces.  Nested
        #: invocations run with the *server's* domain active, so they
        #: never match and charge normally.
        self.origin = invocation.current_domain()
        #: (src node, dst node) -> [ops absorbed, request bytes].
        self._pairs: Dict[Tuple[Any, Any], List[int]] = {}
        self.absorbed_ops = 0

    def absorbs(self, caller, server) -> bool:
        return self.origin is not None and caller is self.origin

    def absorb(self, src_node, dst_node, nbytes: int) -> None:
        """Account one network invocation into the batch.  Raises
        :class:`~repro.ipc.network.NetworkPartitionError` if the pair is
        partitioned — before the op body runs."""
        self.world.network.ensure_reachable(src_node, dst_node)
        entry = self._pairs.setdefault((src_node, dst_node), [0, 0])
        entry[0] += 1
        entry[1] += nbytes
        self.absorbed_ops += 1

    def flush(self) -> None:
        """Charge one round trip per destination carrying the summed
        request payload.

        Delivery was already validated when each sub-op was *absorbed*
        (reachability is checked before the op body runs), so the flush
        charges those sends without re-checking: a fault-plane partition
        that arrives between absorption and flush must not retroactively
        "unsend" messages whose operations already executed server-side.
        """
        counters = self.world.counters
        for (src, dst), (nops, nbytes) in self._pairs.items():
            if nops == 0:
                continue
            self.world.network.send(src, dst, nbytes, checked=False)
            counters.inc("compound.batches")
            counters.inc("compound.batched_ops", nops)
            # Round trips the batch avoided relative to one-per-op.
            counters.inc("compound.messages_saved", nops - 1)
        self._pairs.clear()


@contextlib.contextmanager
def compound_region(world) -> Iterator[CompoundRegion]:
    """Open a compound region for the currently active domain.

    The round trips for the absorbed invocations are charged when the
    region exits — including on the error path, since ops that already
    ran did go over the wire.
    """
    region = CompoundRegion(world)
    invocation.push_compound_region(region)
    try:
        yield region
    finally:
        invocation.pop_compound_region()
        region.flush()


class CompoundResult:
    """Demultiplexed outcomes of a committed compound batch.

    ``result[i]`` returns sub-op ``i``'s value, or raises: the sub-op's
    own :class:`CompoundSubOpError` if it failed, or the batch's first
    failure if the sub-op was skipped by fail-fast.
    """

    def __init__(self, outcomes: List[Any]) -> None:
        self.outcomes = outcomes

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def error(self) -> Optional[CompoundSubOpError]:
        """The first sub-op failure, or None if the batch succeeded."""
        for outcome in self.outcomes:
            if isinstance(outcome, CompoundSubOpError):
                return outcome
        return None

    @property
    def failed_index(self) -> Optional[int]:
        error = self.error
        return None if error is None else error.index

    @property
    def ok(self) -> bool:
        return self.error is None

    def __getitem__(self, index: int) -> Any:
        outcome = self.outcomes[index]
        if isinstance(outcome, CompoundSubOpError):
            raise outcome
        if outcome is SKIPPED:
            raise self.error  # the failure that aborted the batch
        return outcome

    def values(self) -> List[Any]:
        """All sub-op values; raises on the first failed/skipped op."""
        return [self[i] for i in range(len(self.outcomes))]


class CompoundInvocation:
    """An explicit batch of operations committed in one round trip per
    destination node.

    >>> batch = CompoundInvocation(world)
    >>> batch.add(remote_dir.open_intent, "a.dat")
    0
    >>> batch.add(remote_dir.open_intent, "b.dat")
    1
    >>> result = batch.commit()    # one Network.transfer, two opens
    >>> result[0].attributes.size  # doctest: +SKIP
    """

    def __init__(
        self, world=None, fail_fast: bool = True, retry_policy=None
    ) -> None:
        #: May be None for batches made purely of socket-transport stub
        #: operations (a split-process client has no simulated world).
        self.world = world
        self.fail_fast = fail_fast
        #: Per-batch override; None falls back to ``world.retry_policy``
        #: (so a world-wide ``enable_retries`` covers batches too).
        self.retry_policy = retry_policy
        self._calls: List[Tuple[str, Callable[..., Any], tuple, dict]] = []

    def add(self, op: Callable[..., Any], *args: Any, **kwargs: Any) -> int:
        """Queue a bound operation; returns its index in the batch."""
        label = getattr(op, "__name__", repr(op))
        self._calls.append((label, op, args, kwargs))
        return len(self._calls) - 1

    def __len__(self) -> int:
        return len(self._calls)

    @staticmethod
    def _destination_node(op: Callable[..., Any]):
        """The node a bound operation executes on, if discoverable."""
        target = getattr(op, "__self__", None)
        domain = getattr(target, "domain", None)
        return getattr(domain, "node", None)

    def _run_pass(
        self, indices: List[int], outcomes: List[Any], executed: List[bool]
    ) -> None:
        """One attempt at the sub-ops in ``indices``, inside a compound
        region.  Reachability of each sub-op's destination is
        re-validated *at commit time*, right before its body runs — the
        fault plane can cut a link between batch construction and
        commit (or mid-batch, as earlier sub-ops advance the clock), and
        an op whose batch message could not have been delivered must not
        execute server-side.  ``executed`` records whether a sub-op's
        body ran (even partially): only never-executed sub-ops are safe
        to retry.
        """
        caller = invocation.current_domain()
        network = self.world.network
        with compound_region(self.world):
            for position, index in enumerate(indices):
                label, op, args, kwargs = self._calls[index]
                failed = False
                try:
                    if caller is not None:
                        destination = self._destination_node(op)
                        if (
                            destination is not None
                            and destination is not caller.node
                        ):
                            network.ensure_reachable(caller.node, destination)
                except Exception as exc:
                    # Send-time failure: the body never ran.
                    outcomes[index] = CompoundSubOpError(index, label, exc)
                    failed = True
                if not failed:
                    try:
                        outcomes[index] = op(*args, **kwargs)
                        executed[index] = True
                    except Exception as exc:  # demuxed, not propagated
                        # The body started; it may have left server-side
                        # state, so this sub-op is never retried.
                        executed[index] = True
                        outcomes[index] = CompoundSubOpError(index, label, exc)
                        failed = True
                if failed and self.fail_fast:
                    for later in indices[position + 1 :]:
                        outcomes[later] = SKIPPED
                    break

    def _transport_calls(self):
        """If every queued op is a transport stub operation (see
        :class:`repro.ipc.transport.StubOperation`) on one shared
        transport, the batch can ship as a single compound frame —
        returns ``(transport, wire_calls)``; otherwise None."""
        transport = None
        wire_calls = []
        for label, op, args, kwargs in self._calls:
            wire_call = getattr(op, "_wire_call", None)
            if wire_call is None:
                return None
            op_transport, target, op_name, _idempotent = wire_call
            if transport is None:
                transport = op_transport
            elif op_transport is not transport:
                return None
            wire_calls.append((target, op_name, args, kwargs))
        if transport is None:
            return None
        return transport, wire_calls

    def _commit_via_transport(self, transport, wire_calls) -> CompoundResult:
        """One compound frame out, per-op outcomes demuxed back — the
        socket backend's equivalent of the region flush.  Send failures
        are the transport's to retry (its policy is send-only safe);
        executed sub-op errors come back demultiplexed, exactly like the
        simulated path."""
        from repro.ipc import transport as transport_mod

        outcomes: List[Any] = []
        raw = transport.invoke_compound(wire_calls, fail_fast=self.fail_fast)
        for index, (status, value) in enumerate(raw):
            if status == transport_mod.OK:
                outcomes.append(value)
            elif status == transport_mod.ERRORED:
                outcomes.append(
                    CompoundSubOpError(index, self._calls[index][0], value)
                )
            else:
                outcomes.append(SKIPPED)
        if self.world is not None:
            counters = self.world.counters
            counters.inc("compound.batches")
            counters.inc("compound.batched_ops", len(wire_calls))
            counters.inc("compound.messages_saved", len(wire_calls) - 1)
        return CompoundResult(outcomes)

    def commit(self) -> CompoundResult:
        """Run the batch inside a compound region and demultiplex the
        per-op outcomes.

        With a retry policy (set on the batch or world-wide), transient
        send-time failures are retried with backoff — *idempotence-
        aware*: only sub-ops that never executed (the failed send and
        everything fail-fast skipped after it) are re-run; sub-ops whose
        bodies ran, and non-transient failures, surface as before.

        A batch made entirely of transport stub operations (the
        split-process client) bypasses the region machinery and ships as
        one compound frame per :meth:`_commit_via_transport`.
        """
        if self.world is not None:
            self.world.counters.inc("compound.commit")
        via_transport = self._transport_calls()
        if via_transport is not None:
            return self._commit_via_transport(*via_transport)
        if self.world is None:
            raise InvocationError(
                "CompoundInvocation without a world can only batch "
                "transport stub operations"
            )
        policy = (
            self.retry_policy
            if self.retry_policy is not None
            else self.world.retry_policy
        )
        total = len(self._calls)
        outcomes: List[Any] = [SKIPPED] * total
        executed: List[bool] = [False] * total
        pending = list(range(total))
        attempt = 0
        waited_us = 0.0
        while True:
            self._run_pass(pending, outcomes, executed)
            if policy is None:
                break
            retryable = [
                index
                for index in pending
                if not executed[index]
                and isinstance(outcomes[index], CompoundSubOpError)
                and isinstance(outcomes[index].cause, policy.retry_on)
            ]
            if not retryable:
                break
            cause = outcomes[retryable[0]].cause
            if not policy.should_retry(attempt, waited_us, cause):
                break
            backoff = policy.backoff_us(attempt)
            self.world.counters.inc("compound.retries")
            self.world.trace(
                "retry", "compound_backoff", attempt=attempt,
                backoff_us=backoff, ops=len(retryable),
            )
            self.world.clock.advance(backoff, "retry_backoff")
            waited_us += backoff
            attempt += 1
            # Never-executed sub-ops only: the transient failures plus
            # everything fail-fast skipped behind them.
            pending = [index for index in pending if not executed[index]]
        return CompoundResult(outcomes)
