"""Compound remote invocation — several operations, one round trip.

The paper flags the cost of splitting a stack across domains and
machines as per-hop, per-operation round trips (sec. 6.4) and points to
caching as one remedy.  Production distributed file systems went
further: Lustre-style *intent* requests carry a whole lookup+open+attr
chain to the server in a single message.  This module supplies the
transport half of that idea for any Spring object.

Two layers of API:

* :func:`compound_region` — a context manager that *absorbs* the
  network hops issued by the domain that opened it.  Inside the region,
  every cross-node invocation made by that domain skips its individual
  ``Network.transfer`` and instead accumulates (op count, payload
  bytes) per destination node; on exit the region charges **one**
  round trip per destination carrying the summed payload.  Invocations
  on the local/cross-domain paths, and nested invocations made by
  *other* domains (e.g. a server calling further on), are unaffected.
  Reachability is still checked per absorbed op — a partition fails the
  sub-operation *before* its body runs server-side, so a dead link
  never leaves partial server-side state.

* :class:`CompoundInvocation` — an explicit batch: queue bound
  operations with :meth:`~CompoundInvocation.add`, run them with
  :meth:`~CompoundInvocation.commit`, and get a
  :class:`CompoundResult` that demultiplexes per-op results and
  exceptions.  With ``fail_fast`` (the default) a failing sub-op stops
  the batch; the ops after it never execute.

Everything here is opt-in: code that never opens a region or builds a
batch charges exactly what it did before, so the Table 2/3 calibration
is untouched.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import InvocationError
from repro.ipc import invocation


class CompoundSubOpError(InvocationError):
    """One sub-operation of a compound batch failed.

    Carries which sub-op it was (``index``, ``op_name``) and the
    underlying exception (``cause``), so callers can tell exactly where
    a batch stopped.
    """

    def __init__(self, index: int, op_name: str, cause: BaseException) -> None:
        super().__init__(
            f"compound sub-op #{index} ({op_name}) failed: "
            f"{type(cause).__name__}: {cause}"
        )
        self.index = index
        self.op_name = op_name
        self.cause = cause


class _Skipped:
    """Sentinel outcome for sub-ops never executed (fail-fast abort)."""

    def __repr__(self) -> str:  # pragma: no cover - repr only
        return "<skipped>"


SKIPPED = _Skipped()


class CompoundRegion:
    """Absorbs network hops issued by the opening domain (see module
    docstring).  Created via :func:`compound_region`."""

    def __init__(self, world) -> None:
        self.world = world
        #: The domain whose hops this region coalesces.  Nested
        #: invocations run with the *server's* domain active, so they
        #: never match and charge normally.
        self.origin = invocation.current_domain()
        #: (src node, dst node) -> [ops absorbed, request bytes].
        self._pairs: Dict[Tuple[Any, Any], List[int]] = {}
        self.absorbed_ops = 0

    def absorbs(self, caller, server) -> bool:
        return self.origin is not None and caller is self.origin

    def absorb(self, src_node, dst_node, nbytes: int) -> None:
        """Account one network invocation into the batch.  Raises
        :class:`~repro.ipc.network.NetworkPartitionError` if the pair is
        partitioned — before the op body runs."""
        self.world.network.ensure_reachable(src_node, dst_node)
        entry = self._pairs.setdefault((src_node, dst_node), [0, 0])
        entry[0] += 1
        entry[1] += nbytes
        self.absorbed_ops += 1

    def flush(self) -> None:
        """Charge one round trip per destination carrying the summed
        request payload."""
        counters = self.world.counters
        for (src, dst), (nops, nbytes) in self._pairs.items():
            if nops == 0:
                continue
            self.world.network.transfer(src, dst, nbytes)
            counters.inc("compound.batches")
            counters.inc("compound.batched_ops", nops)
            # Round trips the batch avoided relative to one-per-op.
            counters.inc("compound.messages_saved", nops - 1)
        self._pairs.clear()


@contextlib.contextmanager
def compound_region(world) -> Iterator[CompoundRegion]:
    """Open a compound region for the currently active domain.

    The round trips for the absorbed invocations are charged when the
    region exits — including on the error path, since ops that already
    ran did go over the wire.
    """
    region = CompoundRegion(world)
    invocation.push_compound_region(region)
    try:
        yield region
    finally:
        invocation.pop_compound_region()
        region.flush()


class CompoundResult:
    """Demultiplexed outcomes of a committed compound batch.

    ``result[i]`` returns sub-op ``i``'s value, or raises: the sub-op's
    own :class:`CompoundSubOpError` if it failed, or the batch's first
    failure if the sub-op was skipped by fail-fast.
    """

    def __init__(self, outcomes: List[Any]) -> None:
        self.outcomes = outcomes

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def error(self) -> Optional[CompoundSubOpError]:
        """The first sub-op failure, or None if the batch succeeded."""
        for outcome in self.outcomes:
            if isinstance(outcome, CompoundSubOpError):
                return outcome
        return None

    @property
    def failed_index(self) -> Optional[int]:
        error = self.error
        return None if error is None else error.index

    @property
    def ok(self) -> bool:
        return self.error is None

    def __getitem__(self, index: int) -> Any:
        outcome = self.outcomes[index]
        if isinstance(outcome, CompoundSubOpError):
            raise outcome
        if outcome is SKIPPED:
            raise self.error  # the failure that aborted the batch
        return outcome

    def values(self) -> List[Any]:
        """All sub-op values; raises on the first failed/skipped op."""
        return [self[i] for i in range(len(self.outcomes))]


class CompoundInvocation:
    """An explicit batch of operations committed in one round trip per
    destination node.

    >>> batch = CompoundInvocation(world)
    >>> batch.add(remote_dir.open_intent, "a.dat")
    0
    >>> batch.add(remote_dir.open_intent, "b.dat")
    1
    >>> result = batch.commit()    # one Network.transfer, two opens
    >>> result[0].attributes.size  # doctest: +SKIP
    """

    def __init__(self, world, fail_fast: bool = True) -> None:
        self.world = world
        self.fail_fast = fail_fast
        self._calls: List[Tuple[str, Callable[..., Any], tuple, dict]] = []

    def add(self, op: Callable[..., Any], *args: Any, **kwargs: Any) -> int:
        """Queue a bound operation; returns its index in the batch."""
        label = getattr(op, "__name__", repr(op))
        self._calls.append((label, op, args, kwargs))
        return len(self._calls) - 1

    def __len__(self) -> int:
        return len(self._calls)

    def commit(self) -> CompoundResult:
        """Run the batch inside a compound region and demultiplex the
        per-op outcomes."""
        self.world.counters.inc("compound.commit")
        outcomes: List[Any] = []
        with compound_region(self.world):
            for index, (label, op, args, kwargs) in enumerate(self._calls):
                try:
                    outcomes.append(op(*args, **kwargs))
                except Exception as exc:  # demuxed, not propagated
                    outcomes.append(CompoundSubOpError(index, label, exc))
                    if self.fail_fast:
                        outcomes.extend(
                            [SKIPPED] * (len(self._calls) - index - 1)
                        )
                        break
        return CompoundResult(outcomes)
