"""Nodes.

A node models one machine: a nucleus (kernel) domain hosting the VMM,
plus any number of server and user domains (paper Figure 1).  Nodes are
created through :meth:`repro.world.World.create_node`, which also boots
the node's VMM and shared name-space root.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.ipc.domain import Credentials, Domain

if TYPE_CHECKING:
    from repro.vm.vmm import Vmm


class Node:
    """One machine in the simulated distributed system."""

    def __init__(self, world, name: str) -> None:
        self.world = world
        self.name = name
        self.domains: Dict[str, Domain] = {}
        #: The nucleus domain — kernel + VMM live here.
        self.nucleus = self.create_domain(
            "nucleus", Credentials("nucleus", privileged=True)
        )
        #: Per-node virtual memory manager; attached by repro.vm.vmm at
        #: world.create_node time (avoids an import cycle).
        self.vmm: Optional["Vmm"] = None

    def create_domain(
        self, name: str, credentials: Optional[Credentials] = None
    ) -> Domain:
        """Create a new address space on this node.

        Domain names are unique per node; reusing one is a configuration
        error.
        """
        if name in self.domains:
            raise ValueError(f"domain {name!r} already exists on node {self.name!r}")
        domain = Domain(self, name, credentials)
        self.domains[name] = domain
        return domain

    def __repr__(self) -> str:
        return f"<Node {self.name!r} domains={sorted(self.domains)}>"
