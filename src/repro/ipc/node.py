"""Nodes.

A node models one machine: a nucleus (kernel) domain hosting the VMM,
plus any number of server and user domains (paper Figure 1).  Nodes are
created through :meth:`repro.world.World.create_node`, which also boots
the node's VMM and shared name-space root.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.ipc.domain import Credentials, Domain

if TYPE_CHECKING:
    from repro.sim.scheduler import ServiceQueue
    from repro.vm.vmm import Vmm


class Node:
    """One machine in the simulated distributed system."""

    def __init__(self, world, name: str) -> None:
        self.world = world
        self.name = name
        self.domains: Dict[str, Domain] = {}
        #: True while the machine is down: every message to or from it
        #: raises :class:`~repro.errors.NodeCrashedError`.
        self.crashed = False
        #: Incarnation number, bumped on every :meth:`recover`.  Server
        #: layers stamp per-client state with the epoch it was
        #: registered under; a mismatch after recovery is how they know
        #: that state was lost with the crash (Lustre-style recovery).
        self.epoch = 0
        #: Called (no args) when the node crashes — server layers hosted
        #: here register to drop the volatile state a real crash loses.
        self._crash_listeners: List[Callable[[], None]] = []
        #: The nucleus domain — kernel + VMM live here.
        self.nucleus = self.create_domain(
            "nucleus", Credentials("nucleus", privileged=True)
        )
        #: Per-node virtual memory manager; attached by repro.vm.vmm at
        #: world.create_node time (avoids an import cycle).
        self.vmm: Optional["Vmm"] = None
        #: Inbound request queue (concurrent mode): None — the default —
        #: means infinite server concurrency and zero queueing, which is
        #: exactly the sequential calibration behaviour.  Install one
        #: with :meth:`install_server_queue` to give the node a finite
        #: service capacity under overlapping load.
        self.server_queue: Optional["ServiceQueue"] = None
        #: Objects this node exposes to out-of-process clients over a
        #: real transport (see :meth:`expose` / :meth:`serve`).  Empty —
        #: and cost-free — unless the node is actually served.
        self.exports: Dict[str, object] = {}

    # --- out-of-process serving --------------------------------------------
    def expose(self, name: str, obj: object) -> None:
        """Publish ``obj`` under ``name`` for transport clients (the
        wire analogue of binding into the node's name space)."""
        self.exports[name] = obj

    def serve(self, host: str = "127.0.0.1", port: int = 0):
        """A :class:`~repro.ipc.transport.SocketServer` over this
        node's exports — TCP clients in other OS processes invoke them
        via :class:`~repro.ipc.transport.SocketTransport`.  The caller
        owns the server lifecycle (``await start()`` or wrap in a
        :class:`~repro.ipc.transport.ServerThread`)."""
        from repro.ipc.transport import SocketServer

        return SocketServer(
            self.exports, name=self.name, host=host, port=port
        )

    # --- service capacity ---------------------------------------------------
    def install_server_queue(self, servers: int = 1) -> "ServiceQueue":
        """Give this node a finite request-service capacity: every
        inbound network message reserves one of ``servers`` slots for
        the model's per-message service time, and time spent waiting for
        a slot is charged to ``server_queue_wait`` (see
        :class:`repro.sim.scheduler.ServiceQueue`)."""
        from repro.sim.costs import SERVER_QUEUE_WAIT
        from repro.sim.scheduler import ServiceQueue

        self.server_queue = ServiceQueue(
            self.world.clock, servers, SERVER_QUEUE_WAIT
        )
        return self.server_queue

    # --- failure / recovery ------------------------------------------------
    def add_crash_listener(self, fn: Callable[[], None]) -> None:
        """Register ``fn`` to run when this node crashes."""
        self._crash_listeners.append(fn)

    def crash(self) -> None:
        """The machine goes down.  Volatile server state is lost (crash
        listeners fire); messages to/from the node fail until
        :meth:`recover`."""
        if self.crashed:
            return
        self.crashed = True
        self.world.trace("fault", "node_crash", node=self.name)
        if self.server_queue is not None:
            # The in-memory request queue dies with the machine: slots
            # free immediately, so post-recovery requests start clean.
            self.server_queue.reset()
        for fn in self._crash_listeners:
            fn()

    def recover(self) -> None:
        """The machine comes back up under a new epoch.  Clients holding
        pre-crash state see the epoch bump and re-register (see
        :mod:`repro.fs.dfs`)."""
        if not self.crashed:
            return
        self.crashed = False
        self.epoch += 1
        self.world.trace("fault", "node_recover", node=self.name, epoch=self.epoch)

    def create_domain(
        self, name: str, credentials: Optional[Credentials] = None
    ) -> Domain:
        """Create a new address space on this node.

        Domain names are unique per node; reusing one is a configuration
        error.
        """
        if name in self.domains:
            raise ValueError(f"domain {name!r} already exists on node {self.name!r}")
        domain = Domain(self, name, credentials)
        self.domains[name] = domain
        return domain

    def __repr__(self) -> str:
        return f"<Node {self.name!r} domains={sorted(self.domains)}>"
