"""Invocation retry with timeout and capped exponential backoff.

Production distributed file systems treat a dropped message or a
bouncing server as a delay, not an error (cf. Lustre's recovery design):
the client backs off, the link heals or the node recovers, and the
request goes through.  A :class:`RetryPolicy` installed on the world
(:meth:`repro.world.World.enable_retries`) gives the invocation layer
exactly that behaviour for *transient* network failures
(:class:`~repro.errors.TransientNetworkError`: partitions, crashed
nodes, dropped messages).

Safety: the invocation layer retries only the request *send* — a
failure raised by ``Network.transfer`` means the operation body never
ran server-side, so resending cannot double-execute anything.  The
compound layer applies the same rule batch-wide: only sub-operations
that never executed are retried (see
:meth:`repro.ipc.compound.CompoundInvocation.commit`).

Backoff advances the *virtual* clock (category ``retry_backoff``), which
is also what lets a retry succeed: scheduled heal/recover events fire
when the clock passes their time, so "back off 800us" can carry the
caller across a fault window deterministically.

Off by default: ``world.retry_policy`` is None and every failure
surfaces exactly as before.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple, Type

from repro.errors import TransientNetworkError


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Retry knobs for transient cross-node failures.

    ``max_attempts`` counts every try including the first; the backoff
    before retry *n* (0-based) is ``base_backoff_us * factor**n`` capped
    at ``max_backoff_us``; ``timeout_us`` bounds the total virtual time
    spent backing off for one logical operation — whichever limit is hit
    first stops the retrying and the last error surfaces unchanged.
    """

    max_attempts: int = 8
    base_backoff_us: float = 100.0
    backoff_factor: float = 2.0
    max_backoff_us: float = 10_000.0
    timeout_us: float = 100_000.0
    retry_on: Tuple[Type[BaseException], ...] = (TransientNetworkError,)

    def backoff_us(self, attempt: int) -> float:
        """Backoff charged before retry number ``attempt`` (0-based)."""
        return min(
            self.base_backoff_us * self.backoff_factor**attempt,
            self.max_backoff_us,
        )

    def should_retry(
        self, attempt: int, waited_us: float, exc: BaseException
    ) -> bool:
        """May retry number ``attempt`` happen, having already waited
        ``waited_us`` in backoff, after failure ``exc``?"""
        if not isinstance(exc, self.retry_on):
            return False
        if attempt + 1 >= self.max_attempts:
            return False
        return waited_us + self.backoff_us(attempt) <= self.timeout_us


def retry_send(world, target, policy: RetryPolicy, src_node, dst_node,
               nbytes: int) -> None:
    """Send one request message with retries under ``policy``.

    ``target`` is the invocation target, used only for telemetry: every
    retry counts under ``invoke.retries`` and — when the target belongs
    to a file system layer — ``<layer>.retries``, so the per-layer
    fault-tolerance breakdown sees it.
    """
    attempt = 0
    waited_us = 0.0
    while True:
        try:
            world.network.send(src_node, dst_node, nbytes)
            return
        except TransientNetworkError as exc:
            if not policy.should_retry(attempt, waited_us, exc):
                raise
            backoff = policy.backoff_us(attempt)
            world.counters.inc("invoke.retries")
            layer = getattr(target, "layer", None)
            if layer is not None:
                world.counters.inc(layer.fs_type() + ".retries")
            world.trace(
                "retry",
                "backoff",
                attempt=attempt,
                backoff_us=backoff,
                dst=dst_node.name,
                error=type(exc).__name__,
            )
            world.clock.advance(backoff, "retry_backoff")
            waited_us += backoff
            attempt += 1
