"""The transport seam: simulated and real-socket message planes.

The paper's network proxies let the same invocation cross a real machine
boundary; our :class:`~repro.ipc.network.Network` has so far only
*simulated* that crossing (virtual-clock costs, no bytes).  This module
makes the message plane pluggable:

* :class:`Transport` — the seam.  ``send`` is the message-plane surface
  :class:`~repro.ipc.network.Network` routes through (one request
  message, sized in bytes); ``invoke`` / ``invoke_compound`` carry the
  operation surface stubs use, so client code is identical against both
  backends.

* :class:`SimulatedTransport` — the default, installed by every
  ``Network``.  ``send`` delegates straight back to
  :meth:`Network.transfer`, so the simulated world is byte-identical to
  the pre-seam behaviour; ``invoke`` dispatches directly to exported
  objects in-process (used by the backend-parity tests and benchmarks).

* :class:`SocketServer` / :class:`SocketTransport` — a real asyncio TCP
  pair speaking the :mod:`repro.ipc.wire` framing, so a Spring stack can
  be split across OS processes: the server process exposes objects by
  name (``node.expose``), the client process binds
  :class:`RemoteStub`\\ s and invokes them.  Socket failures map onto
  the same transient-error taxonomy the simulated fault plane uses —
  connect failures/timeouts become
  :class:`~repro.ipc.network.NetworkPartitionError`, a connection that
  dies before the reply becomes
  :class:`~repro.errors.NodeCrashedError`, and a reply timeout becomes
  :class:`~repro.errors.MessageDroppedError` — which is exactly what
  lets :class:`~repro.ipc.retry.RetryPolicy` (send-only retries) and
  :class:`~repro.ipc.compound.CompoundInvocation` (one frame per batch)
  work unchanged on both backends.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import (
    InvocationError,
    MessageDroppedError,
    NameNotFoundError,
    NodeCrashedError,
    TransientNetworkError,
)
from repro.ipc import wire
from repro.ipc.network import NetworkPartitionError

#: Reserved op the socket transport's ``send`` uses: the server replies
#: None without touching any export — a pure round trip carrying the
#: request's payload bytes (the socket analogue of ``Network.transfer``).
PING_OP = "*ping*"

#: Compound outcome statuses on the transport surface.
OK, ERRORED, SKIPPED = "ok", "error", "skipped"


class ExportRegistry:
    """Named objects reachable through a transport.

    The server-side half of the operation surface, shared by the
    simulated and socket backends so both resolve and execute ops —
    including compound batches — with identical semantics.  Only public
    methods (no leading underscore) are invokable.
    """

    def __init__(self, exports: Optional[Dict[str, Any]] = None) -> None:
        self.exports: Dict[str, Any] = exports if exports is not None else {}

    def expose(self, name: str, obj: Any) -> None:
        self.exports[name] = obj

    def resolve(self, target: str, op: str):
        try:
            obj = self.exports[target]
        except KeyError:
            raise NameNotFoundError(f"no export named {target!r}")
        if op.startswith("_") or op.startswith("*"):
            raise InvocationError(f"operation name {op!r} is not invokable")
        method = getattr(obj, op, None)
        if method is None or not callable(method):
            raise InvocationError(
                f"export {target!r} has no operation {op!r}"
            )
        return method

    def call(self, target: str, op: str, args: Sequence, kwargs: dict) -> Any:
        return self.resolve(target, op)(*args, **kwargs)

    def run_compound(
        self, calls: Sequence[Tuple[str, str, Sequence, dict]],
        fail_fast: bool = True,
    ) -> List[Tuple[str, Any]]:
        """Execute a batch; returns ``(status, value)`` per sub-op where
        status is OK (value = result), ERRORED (value = exception), or
        SKIPPED (fail-fast abort; value = None)."""
        outcomes: List[Tuple[str, Any]] = []
        failed = False
        for target, op, args, kwargs in calls:
            if failed and fail_fast:
                outcomes.append((SKIPPED, None))
                continue
            try:
                outcomes.append((OK, self.call(target, op, args, kwargs)))
            except Exception as exc:
                outcomes.append((ERRORED, exc))
                failed = True
        return outcomes


class Transport:
    """Abstract message plane.  See module docstring."""

    def send(self, src, dst, nbytes: int, checked: bool = True) -> None:
        """Deliver one request message of ``nbytes`` from ``src`` to
        ``dst`` (node objects or node names, backend-dependent)."""
        raise NotImplementedError

    def payload(self, src, dst, nbytes: int) -> None:
        """Additional reply payload riding an already-sent exchange."""
        raise NotImplementedError

    def invoke(
        self, target: str, op: str, args: Sequence = (),
        kwargs: Optional[dict] = None, idempotent: bool = False,
    ) -> Any:
        raise NotImplementedError

    def invoke_compound(
        self, calls: Sequence[Tuple[str, str, Sequence, dict]],
        fail_fast: bool = True, idempotent: bool = False,
    ) -> List[Tuple[str, Any]]:
        raise NotImplementedError

    def bind(self, target: str, idempotent: Iterable[str] = ()) -> "RemoteStub":
        """A stub whose method calls go through this transport."""
        return RemoteStub(self, target, idempotent)

    def close(self) -> None:
        pass

    def describe(self) -> str:
        return type(self).__name__


class SimulatedTransport(Transport):
    """The in-process backend: costs move, bytes don't.

    ``send``/``payload`` delegate to the owning
    :class:`~repro.ipc.network.Network`'s transfer/payload accounting —
    the pre-seam code path, unchanged — while ``invoke`` dispatches
    directly to exported objects (any simulated invocation costs are
    charged by the ops themselves, exactly as for a local caller).
    """

    def __init__(self, network, exports: Optional[Dict[str, Any]] = None,
                 registry: Optional[ExportRegistry] = None) -> None:
        self.network = network
        self.registry = registry or ExportRegistry(exports)

    def send(self, src, dst, nbytes: int, checked: bool = True) -> None:
        self.network.transfer(src, dst, nbytes, checked=checked)

    def payload(self, src, dst, nbytes: int) -> None:
        self.network.payload(src, dst, nbytes)

    def invoke(self, target, op, args=(), kwargs=None, idempotent=False):
        return self.registry.call(target, op, args, kwargs or {})

    def invoke_compound(self, calls, fail_fast=True, idempotent=False):
        return self.registry.run_compound(calls, fail_fast)


# --- real sockets -----------------------------------------------------------

class SocketServer:
    """Asyncio TCP server hosting an export registry.

    One client connection is one framed request/reply stream; requests
    on a connection are served in order (a Spring server domain's
    single-threaded determinism).  ``fail_next_reply`` is the socket
    analogue of the simulated fault plane's crash injection: the op
    executes, then the connection drops before the reply — the client
    observes a mid-invoke server crash.
    """

    def __init__(
        self,
        exports: Optional[Dict[str, Any]] = None,
        name: str = "server",
        host: str = "127.0.0.1",
        port: int = 0,
        registry: Optional[ExportRegistry] = None,
    ) -> None:
        self.registry = registry or ExportRegistry(exports)
        self.name = name
        self.host = host
        self.port = port
        self.frames_in = 0
        self.frames_out = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.ops_served = 0
        self.compound_batches = 0
        self._fail_next_replies = 0
        self._shutdown_after_reply = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._closed: Optional[asyncio.Event] = None

    # --- fault injection / shutdown ------------------------------------
    def fail_next_reply(self, count: int = 1) -> None:
        """Drop the connection instead of replying to the next ``count``
        requests (after executing them) — a mid-invoke crash."""
        self._fail_next_replies += count

    def request_shutdown(self) -> None:
        """Stop serving after the currently executing request's reply is
        written (safe to call from inside a served operation)."""
        self._shutdown_after_reply = True

    # --- lifecycle ------------------------------------------------------
    async def start(self) -> int:
        self._closed = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def wait_closed(self) -> None:
        assert self._closed is not None, "start() first"
        await self._closed.wait()
        self._server.close()
        await self._server.wait_closed()

    def stop(self) -> None:
        if self._closed is not None:
            self._closed.set()

    # --- the serving loop ----------------------------------------------
    async def _handle_client(self, reader, writer) -> None:
        try:
            while True:
                try:
                    msg = await wire.read_message(reader)
                except (wire.WireError, ConnectionError):
                    break
                if msg is None:
                    break
                self.frames_in += 1
                reply = self._reply_for(msg)
                if self._fail_next_replies > 0:
                    self._fail_next_replies -= 1
                    break  # crash: executed, never replied
                writer.write(reply)
                await writer.drain()
                self.frames_out += 1
                self.bytes_out += len(reply)
                if self._shutdown_after_reply:
                    self.stop()
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # The loop may be tearing down (asyncio.run cancels
                # handler tasks); the connection is closed either way.
                pass

    def _reply_for(self, msg: wire.Message) -> bytes:
        self.bytes_in += msg.nbytes
        if msg.op == PING_OP:
            return wire.pack_frame(
                wire.REPLY, msg.seq, self.name, msg.src, msg.op, None
            )
        if msg.kind == wire.COMPOUND:
            self.compound_batches += 1
            calls = [
                (c["target"], c["op"], c["args"], c["kwargs"])
                for c in msg.payload["calls"]
            ]
            outcomes = self.registry.run_compound(
                calls, fail_fast=msg.payload["fail_fast"]
            )
            self.ops_served += sum(
                1 for status, _ in outcomes if status == OK
            )
            encoded = [
                {"status": status, "value": value}
                for status, value in outcomes
            ]
            return wire.pack_frame(
                wire.COMPOUND_REPLY, msg.seq, self.name, msg.src,
                msg.op, encoded,
            )
        try:
            value = self.registry.call(
                msg.payload["target"], msg.op,
                msg.payload["args"], msg.payload["kwargs"],
            )
            self.ops_served += 1
            kind = wire.REPLY
        except Exception as exc:
            value = exc
            kind = wire.ERROR
        try:
            return wire.pack_frame(
                kind, msg.seq, self.name, msg.src, msg.op, value
            )
        except wire.WireEncodeError as exc:
            # The op returned something outside the wire type system;
            # surface that as the error rather than killing the stream.
            return wire.pack_frame(
                wire.ERROR, msg.seq, self.name, msg.src, msg.op, exc
            )


class ServerThread:
    """Run a :class:`SocketServer` on a private event loop in a daemon
    thread — the in-process harness tests and benchmarks use; a real
    deployment runs the loop in its own OS process (``repro.serve``)."""

    def __init__(self, server: SocketServer) -> None:
        self.server = server
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-socket-server", daemon=True
        )

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # startup failures surface in start()
            self._startup_error = exc
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            await self.server.start()
        finally:
            self._started.set()
        await self.server.wait_closed()

    def start(self) -> int:
        """Start serving; returns the bound port."""
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise RuntimeError("socket server failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self.server.port

    def stop(self, timeout: float = 5.0) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self.server.stop)
        self._thread.join(timeout=timeout)


class SocketTransport(Transport):
    """Client half of the real-socket backend.

    Synchronous facade over an asyncio TCP connection: each ``invoke``
    writes one request frame and blocks for the matching reply.  The
    connection is established lazily and re-established after any
    failure, so a healed server is reachable again on the next call.

    Retry semantics mirror :func:`repro.ipc.retry.retry_send`: with a
    :class:`~repro.ipc.retry.RetryPolicy` installed, *send-phase*
    failures (connect refused/timed out, request write failed — the
    server never saw the op) back off and retry; a failure while waiting
    for the reply means the op may have executed, so it is retried only
    for ops declared idempotent.  Backoff here is wall-clock — there is
    no virtual clock spanning two processes.
    """

    def __init__(
        self,
        host: str,
        port: int,
        src: str = "client",
        dst: str = "server",
        connect_timeout_s: float = 5.0,
        reply_timeout_s: float = 30.0,
        retry_policy=None,
    ) -> None:
        self.host = host
        self.port = port
        self.src = src
        self.dst = dst
        self.connect_timeout_s = connect_timeout_s
        self.reply_timeout_s = reply_timeout_s
        self.retry_policy = retry_policy
        self.messages = 0
        self.bytes_out = 0
        self.bytes_in = 0
        self.retries = 0
        self.reconnects = 0
        self._seq = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._loop = asyncio.new_event_loop()

    # --- connection management ------------------------------------------
    def _disconnect(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
            except Exception:
                pass
        self._reader = self._writer = None

    def close(self) -> None:
        self._disconnect()
        if not self._loop.is_closed():
            # Let transport close callbacks run before the loop dies.
            self._loop.run_until_complete(asyncio.sleep(0))
            self._loop.close()

    async def _ensure_connected(self) -> None:
        if self._writer is not None:
            return
        try:
            self._reader, self._writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                timeout=self.connect_timeout_s,
            )
        except (asyncio.TimeoutError, OSError) as exc:
            raise _send_phase(NetworkPartitionError(
                f"connect to {self.host}:{self.port} failed: "
                f"{type(exc).__name__}: {exc}"
            )) from exc
        self.reconnects += 1

    async def _exchange(self, kind: int, op: str, payload: Any) -> wire.Message:
        """One request frame out, one reply frame in.  Raises transient
        errors tagged with whether the failure was send-phase."""
        await self._ensure_connected()
        self._seq += 1
        seq = self._seq
        frame = wire.pack_frame(kind, seq, self.src, self.dst, op, payload)
        try:
            self._writer.write(frame)
            await self._writer.drain()
        except (asyncio.TimeoutError, OSError) as exc:
            self._disconnect()
            raise _send_phase(NodeCrashedError(
                f"request write to {self.dst!r} failed: {exc}"
            )) from exc
        self.messages += 1
        self.bytes_out += len(frame)
        try:
            msg = await asyncio.wait_for(
                wire.read_message(self._reader), timeout=self.reply_timeout_s
            )
        except asyncio.TimeoutError as exc:
            self._disconnect()
            raise MessageDroppedError(
                f"no reply from {self.dst!r} within "
                f"{self.reply_timeout_s}s (op {op!r})"
            ) from exc
        except (wire.WireError, OSError) as exc:
            self._disconnect()
            raise NodeCrashedError(
                f"connection to {self.dst!r} died awaiting reply: {exc}"
            ) from exc
        if msg is None:
            self._disconnect()
            raise NodeCrashedError(
                f"server {self.dst!r} closed the connection mid-invoke "
                f"(op {op!r})"
            )
        if msg.seq != seq:
            self._disconnect()
            raise wire.WireError(
                f"reply seq {msg.seq} does not match request seq {seq}"
            )
        self.bytes_in += msg.nbytes
        return msg

    def _call(self, kind: int, op: str, payload: Any,
              idempotent: bool) -> wire.Message:
        """Run one exchange with send-only (or idempotent) retries."""
        policy = self.retry_policy
        attempt = 0
        waited_us = 0.0
        while True:
            try:
                return self._loop.run_until_complete(
                    self._exchange(kind, op, payload)
                )
            except TransientNetworkError as exc:
                send_phase = getattr(exc, "_send_phase", False)
                if (
                    policy is None
                    or not (send_phase or idempotent)
                    or not policy.should_retry(attempt, waited_us, exc)
                ):
                    raise
                backoff = policy.backoff_us(attempt)
                time.sleep(backoff / 1e6)
                waited_us += backoff
                attempt += 1
                self.retries += 1

    # --- Transport surface ----------------------------------------------
    def send(self, src, dst, nbytes: int, checked: bool = True) -> None:
        """One real round trip carrying ``nbytes`` of payload — the
        socket analogue of :meth:`Network.transfer` (src/dst are fixed
        by the connection; the arguments are accepted for surface
        compatibility)."""
        self._call(wire.REQUEST, PING_OP, b"\x00" * nbytes, idempotent=True)

    def payload(self, src, dst, nbytes: int) -> None:
        """Reply payloads ride the real reply frames; nothing to do."""

    def invoke(self, target, op, args=(), kwargs=None, idempotent=False):
        msg = self._call(
            wire.REQUEST, op,
            {"target": target, "args": list(args), "kwargs": kwargs or {}},
            idempotent,
        )
        if msg.kind == wire.ERROR:
            raise msg.payload
        return msg.payload

    def invoke_compound(self, calls, fail_fast=True, idempotent=False):
        payload = {
            "fail_fast": fail_fast,
            "calls": [
                {"target": target, "op": op, "args": list(args),
                 "kwargs": kwargs or {}}
                for target, op, args, kwargs in calls
            ],
        }
        msg = self._call(wire.COMPOUND, wire.COMPOUND_OP, payload, idempotent)
        if msg.kind == wire.ERROR:
            raise msg.payload
        return [(entry["status"], entry["value"]) for entry in msg.payload]

    def describe(self) -> str:
        return f"SocketTransport({self.host}:{self.port})"


def _send_phase(exc: TransientNetworkError) -> TransientNetworkError:
    """Tag a transport error as send-phase: the server never saw the
    request, so resending cannot double-execute anything."""
    exc._send_phase = True
    return exc


class RemoteStub:
    """Client-side handle to one exported object.

    Attribute access yields bound, batchable operations::

        fs = transport.bind("fs", idempotent=("stat", "pread"))
        fs.mkdir("logs")                 # one frame (or direct call)
        batch = CompoundInvocation(None)
        batch.add(fs.stat, "logs")       # queued ...
        batch.commit()                   # ... one compound frame
    """

    def __init__(self, transport: Transport, target: str,
                 idempotent: Iterable[str] = ()) -> None:
        self._transport = transport
        self._target = target
        self._idempotent = frozenset(idempotent)

    def __getattr__(self, op: str) -> "StubOperation":
        if op.startswith("_"):
            raise AttributeError(op)
        return StubOperation(self, op)

    def __repr__(self) -> str:
        return (
            f"<RemoteStub {self._target!r} via {self._transport.describe()}>"
        )


class StubOperation:
    """One bound stub operation — callable, and recognised by
    :class:`~repro.ipc.compound.CompoundInvocation` for batching."""

    __slots__ = ("_stub", "_op", "__name__")

    def __init__(self, stub: RemoteStub, op: str) -> None:
        self._stub = stub
        self._op = op
        self.__name__ = op

    @property
    def _wire_call(self) -> Tuple[Transport, str, str, bool]:
        stub = self._stub
        return (
            stub._transport, stub._target, self._op,
            self._op in stub._idempotent,
        )

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        transport, target, op, idempotent = self._wire_call
        return transport.invoke(target, op, args, kwargs, idempotent)
