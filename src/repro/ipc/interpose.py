"""Generic object interposition support.

"An object O1 can be substituted for another object O2 of type foo as
long as O1 is also of type foo.  The implementation of O1 decides on a
per-operation basis whether to invoke the corresponding operation on O2,
or whether to implement the functionality itself." (paper sec. 5)

Concrete interposers (file wrappers, context interposers) live next to
the interfaces they interpose on; this module provides the shared
forwarding plumbing and call records used by watchdog-style interposers.
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Tuple

from repro.ipc.object import SpringObject


@dataclasses.dataclass
class CallRecord:
    """One intercepted operation, for watchdog auditing."""

    op: str
    args: Tuple[Any, ...]
    forwarded: bool


class InterposerBase(SpringObject):
    """Base class for interposers.

    Subclasses implement the interposed interface; operations either call
    :meth:`forward` (delegating to the original object) or implement the
    behaviour themselves, recording either way so tests and examples can
    observe interception.
    """

    def __init__(self, domain, target: SpringObject) -> None:
        super().__init__(domain)
        self.target = target
        self.calls: List[CallRecord] = []

    def forward(self, op: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke ``op`` on the original object and record the call."""
        self.calls.append(CallRecord(op, args, forwarded=True))
        return getattr(self.target, op)(*args, **kwargs)

    def record_local(self, op: str, *args: Any) -> None:
        """Record an operation the interposer handled itself."""
        self.calls.append(CallRecord(op, args, forwarded=False))

    def intercepted(self, op: str) -> int:
        """How many times ``op`` was handled locally (not forwarded)."""
        return sum(1 for c in self.calls if c.op == op and not c.forwarded)

    def forwarded_count(self, op: str) -> int:
        return sum(1 for c in self.calls if c.op == op and c.forwarded)
