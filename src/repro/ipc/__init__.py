"""Spring object/IPC model: objects, domains, nodes, invocation paths,
narrowing, and interposition (paper sec. 3.1)."""

from repro.ipc.compound import (
    CompoundInvocation,
    CompoundResult,
    CompoundSubOpError,
    compound_region,
)
from repro.ipc.domain import Credentials, Domain
from repro.ipc.interpose import CallRecord, InterposerBase
from repro.ipc.invocation import current_domain, operation
from repro.ipc.narrow import narrow, narrow_or_raise
from repro.ipc.network import Network, NetworkPartitionError
from repro.ipc.node import Node
from repro.ipc.object import SpringObject
from repro.ipc.retry import RetryPolicy
from repro.ipc.transport import (
    RemoteStub,
    ServerThread,
    SimulatedTransport,
    SocketServer,
    SocketTransport,
    Transport,
)

__all__ = [
    "RemoteStub",
    "ServerThread",
    "SimulatedTransport",
    "SocketServer",
    "SocketTransport",
    "Transport",
    "CompoundInvocation",
    "CompoundResult",
    "CompoundSubOpError",
    "compound_region",
    "Credentials",
    "Domain",
    "CallRecord",
    "InterposerBase",
    "current_domain",
    "operation",
    "narrow",
    "narrow_or_raise",
    "Network",
    "NetworkPartitionError",
    "Node",
    "RetryPolicy",
    "SpringObject",
]
