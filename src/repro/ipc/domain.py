"""Domains.

"A Spring domain is an address space with a collection of threads"
(paper sec. 3.1).  A domain may serve some objects and be a client of
others.  Domains carry the credentials used by naming-context ACL checks,
and each has a per-domain name space (paper sec. 3.2) installed by the
naming subsystem.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Iterator, Optional

from repro.ipc import invocation

if TYPE_CHECKING:
    from repro.ipc.node import Node
    from repro.naming.namespace import Namespace


class Credentials:
    """Identity presented to ACL checks.

    ``principal`` is a user-style identity; ``privileged`` marks system
    servers allowed to manipulate protected parts of the name space
    (paper sec. 5: "the interposer has to be appropriately
    authenticated").
    """

    def __init__(self, principal: str, privileged: bool = False) -> None:
        self.principal = principal
        self.privileged = privileged

    def __repr__(self) -> str:
        kind = "privileged" if self.privileged else "user"
        return f"<Credentials {self.principal!r} ({kind})>"


class Domain:
    """An address space on a node.

    Created through :meth:`repro.ipc.node.Node.create_domain`.  Placement
    of servers into domains is "an administrative decision ... independent
    of the interface of the service" (paper sec. 3.1) — the stacking
    benchmarks exploit exactly this by moving layers between domains.
    """

    def __init__(
        self,
        node: "Node",
        name: str,
        credentials: Optional[Credentials] = None,
    ) -> None:
        self.node = node
        self.name = name
        #: The node's world, bound at creation: domains never migrate
        #: between worlds, and ``domain.world`` sits on the invocation
        #: hot path, so a plain attribute beats a property hop.
        self.world = node.world
        self.credentials = credentials or Credentials(name)
        #: Per-domain name space; installed by repro.naming.namespace.
        self.name_space: Optional["Namespace"] = None

    @contextlib.contextmanager
    def activate(self) -> Iterator["Domain"]:
        """Run the enclosed code on behalf of this domain.

        Invocations made inside the block are charged relative to this
        domain's placement.
        """
        invocation.push_domain(self)
        try:
            yield self
        finally:
            invocation.pop_domain()

    def __repr__(self) -> str:
        return f"<Domain {self.name!r} on {self.node.name!r}>"
