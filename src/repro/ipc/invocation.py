"""Location-independent object invocation.

Spring's stub technology "automatically chooses the optimal path
(procedure calls or cross-domain calls)" (paper sec. 6.4), and the same
invocation works across machines.  We reproduce that with the
:func:`operation` decorator: every operation on a :class:`SpringObject`
compares the calling domain (tracked in a thread-local stack) with the
server domain and charges the virtual clock with the right path cost:

* same domain            -> two local procedure calls
* same node, other domain -> one cross-domain call
* other node              -> one network round trip, sized by the bytes
                             actually carried in arguments and result

Code runs "inside" a domain via ``with domain.activate():``.  Invocations
made with no active domain (common in unit tests that don't care about
costs) are treated as originating in the server's own domain and charge
nothing; benchmarks always activate a client domain.
"""

from __future__ import annotations

import functools
import sys
import threading
from typing import Any, Callable, List, Optional, TypeVar

from repro.errors import RevokedObjectError
from repro.ipc.retry import retry_send

_tls = threading.local()

#: Counter keys for the five invocation paths, interned once — the
#: wrapper below runs on every simulated invocation, so it must not
#: rebuild (and re-hash fresh copies of) these strings per call.
#: ``network_batched`` is a network-path invocation absorbed into a
#: compound batch (see :mod:`repro.ipc.compound`): it rides a shared
#: round trip instead of paying its own.
_INVOKE_KEYS = {
    path: sys.intern(f"invoke.{path}")
    for path in ("direct", "local", "cross_domain", "network", "network_batched")
}


def _stack() -> List[Any]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


def current_domain() -> Optional[Any]:
    """The domain on whose behalf the current code is executing, or None."""
    stack = _stack()
    return stack[-1] if stack else None


def _caller_stack() -> List[Any]:
    stack = getattr(_tls, "callers", None)
    if stack is None:
        stack = []
        _tls.callers = stack
    return stack


def calling_domain() -> Optional[Any]:
    """The domain that invoked the operation currently executing — what
    ACL checks must authenticate (the *client*, not the server whose
    domain is active while the operation body runs)."""
    stack = _caller_stack()
    return stack[-1] if stack else None


def push_domain(domain: Any) -> None:
    _stack().append(domain)


def pop_domain() -> None:
    _stack().pop()


# --- compound-invocation regions ------------------------------------------
# A region (see repro.ipc.compound.CompoundRegion) absorbs the network
# hops issued by the domain that opened it, coalescing them into one
# round trip per destination node.  The stack lives here so the hot
# wrapper below needs no import of the compound module.

def _region_stack() -> List[Any]:
    stack = getattr(_tls, "regions", None)
    if stack is None:
        stack = []
        _tls.regions = stack
    return stack


def push_compound_region(region: Any) -> None:
    _region_stack().append(region)


def pop_compound_region() -> None:
    _region_stack().pop()


def _absorbing_region(caller: Any, server: Any) -> Optional[Any]:
    """Innermost active region willing to absorb a ``caller`` -> ``server``
    network hop, or None."""
    for region in reversed(_region_stack()):
        if region.absorbs(caller, server):
            return region
    return None


def bytes_in(value: Any) -> int:
    """Bytes-like payload carried inside ``value``, recursing through
    containers (dicts of pages, lists of (offset, data) pairs).  Scalars
    and object references are free — the round-trip cost already covers a
    small control message."""
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, dict):
        return sum(bytes_in(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return sum(bytes_in(v) for v in value)
    return 0


def _payload_bytes(args: tuple, kwargs: dict) -> int:
    return sum(bytes_in(v) for v in args) + sum(bytes_in(v) for v in kwargs.values())


F = TypeVar("F", bound=Callable[..., Any])


def operation(fn: F) -> F:
    """Mark a method as a Spring interface operation.

    The wrapper charges the invocation-path cost, records the call on the
    world's counters, and runs the method body with the server's domain
    active (so nested invocations are charged relative to the server).
    """

    op_key = sys.intern(f"op.{fn.__name__}")

    @functools.wraps(fn)
    def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
        if self._revoked:
            raise RevokedObjectError(
                f"{type(self).__name__}.{fn.__name__} on revoked object {self.oid}"
            )
        server = self.domain
        world = server.world
        # Inlined _stack()/_caller_stack(): the wrapper runs on every
        # simulated invocation, so the thread-local lookups happen once
        # here instead of per helper call.
        try:
            domain_stack = _tls.stack
        except AttributeError:
            domain_stack = _tls.stack = []
        try:
            caller_stack = _tls.callers
        except AttributeError:
            caller_stack = _tls.callers = []
        caller = domain_stack[-1] if domain_stack else None
        if caller is None:
            # No active domain: zero-cost local semantics (see module doc).
            path = "direct"
        elif caller is server:
            path = "local"
            world.charge.local_call()
        elif caller.node is server.node:
            path = "cross_domain"
            world.charge.cross_domain_call()
        else:
            request_bytes = _payload_bytes(args, kwargs)
            region = (
                _absorbing_region(caller, server) if _region_stack() else None
            )
            if region is not None:
                # Batched: the round trip is shared with the other ops of
                # the compound; only the payload bytes are accumulated.
                path = "network_batched"
                region.absorb(caller.node, server.node, request_bytes)
            else:
                path = "network"
                policy = world.retry_policy
                if policy is None:
                    # Through the transport seam: the simulated backend
                    # delegates straight to Network.transfer.
                    world.network.send(
                        caller.node, server.node, request_bytes
                    )
                else:
                    # Retrying the send is always safe: a transfer
                    # failure means the op body never ran server-side.
                    retry_send(
                        world, self, policy, caller.node, server.node,
                        request_bytes,
                    )
        inc = world.counters.inc
        inc(_INVOKE_KEYS[path])
        inc(op_key)
        if world.tracer is not None:
            world.trace(
                "invoke",
                f"{type(self).__name__}.{fn.__name__}",
                path=path,
                server=f"{server.node.name}/{server.name}",
                caller=(
                    f"{caller.node.name}/{caller.name}" if caller else "-"
                ),
            )
        domain_stack.append(server)
        caller_stack.append(caller)
        try:
            result = fn(self, *args, **kwargs)
        finally:
            domain_stack.pop()
            caller_stack.pop()
        if caller is not None and caller.node is not server.node:
            reply_bytes = bytes_in(result)
            if reply_bytes:
                world.network.payload(server.node, caller.node, reply_bytes)
        return result

    wrapper._is_operation = True  # type: ignore[attr-defined]
    return wrapper  # type: ignore[return-value]
