"""Interface narrowing.

Spring uses *interface* inheritance: "An interface that accepts an object
of type foo will also accept a subclass of foo" (paper sec. 3.1), and
servers discover extended functionality by attempting to *narrow* a
received object to a subtype — e.g. SFS narrows a received cache object
to ``fs_cache`` to learn whether it is talking to a file system or to a
plain cache manager such as a VMM (paper sec. 4.3).

Failure to narrow is a normal, observable outcome, not an error — hence
:func:`narrow` returns ``None`` and :func:`narrow_or_raise` exists for
call sites where the subtype is mandatory.
"""

from __future__ import annotations

from typing import Optional, Type, TypeVar

from repro.errors import NarrowError

T = TypeVar("T")


def narrow(obj: object, interface: Type[T]) -> Optional[T]:
    """Return ``obj`` typed as ``interface`` if it implements it, else
    ``None``.

    >>> narrow(3, int)
    3
    >>> narrow(3, str) is None
    True
    """
    if isinstance(obj, interface):
        return obj
    return None


def narrow_or_raise(obj: object, interface: Type[T]) -> T:
    """Like :func:`narrow` but raises :class:`NarrowError` on failure."""
    narrowed = narrow(obj, interface)
    if narrowed is None:
        raise NarrowError(
            f"{type(obj).__name__} does not implement {interface.__name__}"
        )
    return narrowed
