"""Wire format for the real socket transport.

The simulated network (:mod:`repro.ipc.network`) moves *costs*, not
bytes; :class:`~repro.ipc.transport.SocketTransport` moves actual bytes
between OS processes, and this module defines the bytes it moves.

Framing is length-prefixed binary, in the spirit of ONC RPC record
marking or the Lustre LNet headers: every message on a connection is ::

    u32   body length (big-endian)
    body:
      2s  magic  b"SW"
      u8  protocol version (1)
      u8  kind   (REQUEST / REPLY / ERROR / COMPOUND / COMPOUND_REPLY)
      u32 sequence number (echoed by the reply)
      u16-prefixed utf-8  src   (sending node name)
      u16-prefixed utf-8  dst   (receiving node name)
      u16-prefixed utf-8  op    (operation name; "*compound*" for batches)
      encoded value       payload

Payload values use a small tag-byte binary encoding covering exactly the
types Spring operations carry across machines: None, bools, ints,
floats, strings, bytes, lists/tuples, string-keyed dicts, registered
value structs (e.g. :class:`~repro.fs.attributes.FileAttributes`), and
exceptions.  Anything else is a :class:`WireEncodeError` — the wire is a
typed contract, not a pickle: unpickling attacker-controlled bytes would
execute code, while this decoder only ever builds plain data.

Exceptions cross the wire by *registered class name* (every
:class:`~repro.errors.SpringError` subclass plus a whitelist of
builtins) and are re-raised client-side as the same type; unknown server
exceptions decode as :class:`RemoteError` carrying the original class
name and message.
"""

from __future__ import annotations

import asyncio
import builtins
import dataclasses
import struct
from typing import Any, Callable, Dict, Optional, Tuple, Type

from repro import errors as _errors
from repro.errors import InvocationError, SpringError

MAGIC = b"SW"
VERSION = 1

#: Frame kinds.
REQUEST = 1
REPLY = 2
ERROR = 3
COMPOUND = 4
COMPOUND_REPLY = 5

#: The header op name carried by compound batches (illegal as a real
#: operation name — leading "*" never survives the export-name check).
COMPOUND_OP = "*compound*"

#: Upper bound on one frame body; a peer announcing more is treated as
#: corrupt rather than trusted to allocate gigabytes.
MAX_FRAME = 64 * 1024 * 1024

_LEN = struct.Struct("!I")
_HEAD = struct.Struct("!2sBBI")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")

_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1

# Value tags.
_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_BIGINT = 0x04
_T_FLOAT = 0x05
_T_STR = 0x06
_T_BYTES = 0x07
_T_LIST = 0x08
_T_TUPLE = 0x09
_T_DICT = 0x0A
_T_STRUCT = 0x0B
_T_EXC = 0x0C


class WireError(SpringError):
    """The byte stream violated the framing or encoding contract."""


class WireEncodeError(WireError):
    """A value outside the wire type system was asked to cross it."""


class RemoteError(InvocationError):
    """A server-side exception of a type this process doesn't know.

    Carries the remote class name so callers can still dispatch on it.
    """

    def __init__(self, remote_type: str, message: str) -> None:
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type
        self.remote_message = message


# --- value structs ----------------------------------------------------------
# Registered value types cross the wire as (name, field dict) and are
# rebuilt by their registered decoder — the typed alternative to pickle.

_STRUCTS: Dict[str, Tuple[type, Callable[[Any], dict], Callable[[dict], Any]]] = {}


def register_struct(
    name: str,
    cls: type,
    to_fields: Callable[[Any], dict],
    from_fields: Callable[[dict], Any],
) -> None:
    """Teach the wire a value type (idempotent per name)."""
    _STRUCTS[name] = (cls, to_fields, from_fields)


def _register_builtin_structs() -> None:
    from repro.fs.attributes import FileAttributes
    from repro.storage.inode import FileType

    register_struct(
        "FileAttributes",
        FileAttributes,
        lambda a: {
            "size": a.size,
            "atime_us": a.atime_us,
            "mtime_us": a.mtime_us,
            "ctime_us": a.ctime_us,
            "ftype": int(a.ftype),
            "nlink": a.nlink,
        },
        lambda f: FileAttributes(
            size=f["size"],
            atime_us=f["atime_us"],
            mtime_us=f["mtime_us"],
            ctime_us=f["ctime_us"],
            ftype=FileType(f["ftype"]),
            nlink=f["nlink"],
        ),
    )


# --- exception registry -----------------------------------------------------

_SAFE_BUILTIN_EXCS = (
    "ValueError",
    "TypeError",
    "KeyError",
    "IndexError",
    "RuntimeError",
    "NotImplementedError",
    "ArithmeticError",
    "ZeroDivisionError",
)


def _exception_registry() -> Dict[str, Type[BaseException]]:
    registry: Dict[str, Type[BaseException]] = {}
    for name in dir(_errors):
        obj = getattr(_errors, name)
        if isinstance(obj, type) and issubclass(obj, SpringError):
            registry[name] = obj
    # NetworkPartitionError lives in repro.ipc.network, not repro.errors.
    from repro.ipc.network import NetworkPartitionError

    registry["NetworkPartitionError"] = NetworkPartitionError
    for name in _SAFE_BUILTIN_EXCS:
        registry[name] = getattr(builtins, name)
    return registry


_EXC_REGISTRY: Optional[Dict[str, Type[BaseException]]] = None


def _exc_registry() -> Dict[str, Type[BaseException]]:
    global _EXC_REGISTRY
    if _EXC_REGISTRY is None:
        _EXC_REGISTRY = _exception_registry()
    return _EXC_REGISTRY


def exception_to_fields(exc: BaseException) -> dict:
    fields = {"type": type(exc).__name__, "message": str(exc)}
    if isinstance(exc, _errors.UnixError):
        fields["code"] = exc.code
    return fields


def exception_from_fields(fields: dict) -> BaseException:
    name = fields["type"]
    message = fields["message"]
    cls = _exc_registry().get(name)
    if cls is None:
        return RemoteError(name, message)
    if cls is _errors.UnixError:
        code = fields.get("code", "EIO")
        # UnixError renders as "[CODE] message"; strip the prefix its
        # __init__ will re-add so the round trip is stable.
        prefix = f"[{code}] "
        if message.startswith(prefix):
            message = message[len(prefix):]
        elif message == code:
            message = ""
        return _errors.UnixError(code, message)
    if cls is KeyError:
        # str(KeyError("x")) is "'x'"; rebuild from the repr'd key so
        # a re-encode round-trips instead of growing quotes.
        return KeyError(message.strip("'"))
    return cls(message)


# --- value encoding ---------------------------------------------------------

def encode_value(value: Any, out: Optional[bytearray] = None) -> bytes:
    """Encode one payload value into wire bytes."""
    buf = bytearray() if out is None else out
    _encode(value, buf)
    return bytes(buf)


def _encode_str(text: str, buf: bytearray) -> None:
    raw = text.encode("utf-8")
    buf += _U32.pack(len(raw))
    buf += raw


def _encode(value: Any, buf: bytearray) -> None:
    if value is None:
        buf.append(_T_NONE)
    elif value is True:
        buf.append(_T_TRUE)
    elif value is False:
        buf.append(_T_FALSE)
    elif type(value) is int:
        if _I64_MIN <= value <= _I64_MAX:
            buf.append(_T_INT)
            buf += _I64.pack(value)
        else:
            raw = value.to_bytes(
                (value.bit_length() + 8) // 8, "big", signed=True
            )
            buf.append(_T_BIGINT)
            buf += _U32.pack(len(raw))
            buf += raw
    elif type(value) is float:
        buf.append(_T_FLOAT)
        buf += _F64.pack(value)
    elif type(value) is str:
        buf.append(_T_STR)
        _encode_str(value, buf)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        buf.append(_T_BYTES)
        buf += _U32.pack(len(raw))
        buf += raw
    elif type(value) is list or type(value) is tuple:
        buf.append(_T_LIST if type(value) is list else _T_TUPLE)
        buf += _U32.pack(len(value))
        for item in value:
            _encode(item, buf)
    elif type(value) is dict:
        buf.append(_T_DICT)
        buf += _U32.pack(len(value))
        for key, item in value.items():
            if type(key) is not str:
                raise WireEncodeError(
                    f"dict keys must be str, got {type(key).__name__}"
                )
            _encode_str(key, buf)
            _encode(item, buf)
    elif isinstance(value, BaseException):
        buf.append(_T_EXC)
        _encode(exception_to_fields(value), buf)
    else:
        if not _STRUCTS:
            _register_builtin_structs()
        for name, (cls, to_fields, _) in _STRUCTS.items():
            if type(value) is cls:
                buf.append(_T_STRUCT)
                _encode_str(name, buf)
                _encode(to_fields(value), buf)
                return
        # Enums (e.g. FileType) degrade to their value.
        ivalue = getattr(value, "value", None)
        if isinstance(value, int) and type(ivalue) is int:
            _encode(ivalue, buf)
            return
        raise WireEncodeError(
            f"type {type(value).__name__} cannot cross the wire"
        )


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise WireError("truncated frame body")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def u16(self) -> int:
        return _U16.unpack(self.take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def text(self) -> str:
        return self.take(self.u32()).decode("utf-8")

    def short_text(self) -> str:
        return self.take(self.u16()).decode("utf-8")


def decode_value(data: bytes) -> Any:
    reader = _Reader(data)
    value = _decode(reader)
    if reader.pos != len(data):
        raise WireError(f"{len(data) - reader.pos} trailing bytes in value")
    return value


def _decode(r: _Reader) -> Any:
    tag = r.take(1)[0]
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return _I64.unpack(r.take(8))[0]
    if tag == _T_BIGINT:
        return int.from_bytes(r.take(r.u32()), "big", signed=True)
    if tag == _T_FLOAT:
        return _F64.unpack(r.take(8))[0]
    if tag == _T_STR:
        return r.text()
    if tag == _T_BYTES:
        return r.take(r.u32())
    if tag == _T_LIST:
        return [_decode(r) for _ in range(r.u32())]
    if tag == _T_TUPLE:
        return tuple(_decode(r) for _ in range(r.u32()))
    if tag == _T_DICT:
        return {r.text(): _decode(r) for _ in range(r.u32())}
    if tag == _T_STRUCT:
        name = r.text()
        fields = _decode(r)
        if not _STRUCTS:
            _register_builtin_structs()
        entry = _STRUCTS.get(name)
        if entry is None:
            raise WireError(f"unknown wire struct {name!r}")
        return entry[2](fields)
    if tag == _T_EXC:
        return exception_from_fields(_decode(r))
    raise WireError(f"unknown value tag 0x{tag:02x}")


# --- framing ----------------------------------------------------------------

@dataclasses.dataclass
class Message:
    """One decoded frame."""

    kind: int
    seq: int
    src: str
    dst: str
    op: str
    payload: Any
    #: Size of the frame as read off the wire (length prefix included);
    #: 0 for messages built locally rather than received.
    nbytes: int = 0


def pack_frame(
    kind: int, seq: int, src: str, dst: str, op: str, payload: Any
) -> bytes:
    body = bytearray(_HEAD.pack(MAGIC, VERSION, kind, seq))
    for text in (src, dst, op):
        raw = text.encode("utf-8")
        body += _U16.pack(len(raw))
        body += raw
    encode_value(payload, body)
    if len(body) > MAX_FRAME:
        raise WireEncodeError(f"frame body {len(body)} exceeds MAX_FRAME")
    return _LEN.pack(len(body)) + bytes(body)


def unpack_body(body: bytes) -> Message:
    if len(body) < _HEAD.size:
        raise WireError("frame body shorter than header")
    magic, version, kind, seq = _HEAD.unpack_from(body)
    if magic != MAGIC:
        raise WireError(f"bad magic {magic!r}")
    if version != VERSION:
        raise WireError(f"unsupported wire version {version}")
    reader = _Reader(body)
    reader.pos = _HEAD.size
    src = reader.short_text()
    dst = reader.short_text()
    op = reader.short_text()
    payload = _decode(reader)
    if reader.pos != len(body):
        raise WireError(f"{len(body) - reader.pos} trailing bytes in frame")
    return Message(kind, seq, src, dst, op, payload)


async def read_message(reader: asyncio.StreamReader) -> Optional[Message]:
    """Read one frame; None on clean EOF at a frame boundary."""
    try:
        prefix = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between frames
        raise WireError("connection closed inside a length prefix") from exc
    (length,) = _LEN.unpack(prefix)
    if length > MAX_FRAME:
        raise WireError(f"announced frame body {length} exceeds MAX_FRAME")
    body = await reader.readexactly(length)
    message = unpack_body(body)
    message.nbytes = _LEN.size + length
    return message
