"""Inter-node network model.

Replaces the paper's machine-to-machine transport (DESIGN.md sec. 2).
Charges a round-trip plus per-KB payload cost for each cross-node
invocation, counts messages and bytes per node pair, and supports
failure injection — ad-hoc partitions for tests, or a full scripted
:class:`repro.sim.faults.FaultPlane` (drops, delays, duplicates,
crashes) installed via :meth:`repro.world.World.install_fault_plan`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, Optional, Set, Tuple

from repro.errors import NodeCrashedError, TransientNetworkError

if TYPE_CHECKING:
    from repro.ipc.node import Node
    from repro.sim.faults import FaultPlane


class NetworkPartitionError(TransientNetworkError):
    """The two nodes cannot currently exchange messages.  Transient in
    the retry sense: links heal."""


class Network:
    """The single network connecting all nodes of a world."""

    def __init__(self, world) -> None:
        self.world = world
        self.messages = 0
        self.bytes_moved = 0
        #: (src, dst) -> message count.
        self.per_pair: Dict[Tuple[str, str], int] = {}
        #: (src, dst) -> bytes carried (requests and piggybacked replies
        #: both count toward the direction they travel).
        self.per_pair_bytes: Dict[Tuple[str, str], int] = {}
        self._partitions: Set[FrozenSet[str]] = set()
        #: Scripted failure schedule; None = no faults (the default).
        self.fault_plane: Optional["FaultPlane"] = None
        #: The message plane behind this network (see
        #: :mod:`repro.ipc.transport`).  The default simulated transport
        #: routes :meth:`send` straight back into :meth:`transfer`, so
        #: simulation stays byte-identical; installing a different
        #: transport redirects every invocation-layer send.
        from repro.ipc.transport import SimulatedTransport

        self.transport = SimulatedTransport(self)

    def install_transport(self, transport) -> None:
        """Replace the message plane (see :class:`repro.ipc.transport.Transport`)."""
        self.transport = transport

    # --- traffic ----------------------------------------------------------
    def send(
        self, src: "Node", dst: "Node", nbytes: int, checked: bool = True
    ) -> None:
        """One request message via the installed transport — the seam
        the invocation, retry, and compound layers send through.  With
        the default :class:`~repro.ipc.transport.SimulatedTransport`
        this is exactly :meth:`transfer`."""
        self.transport.send(src, dst, nbytes, checked=checked)

    def transfer(
        self, src: "Node", dst: "Node", nbytes: int, checked: bool = True
    ) -> None:
        """One request message from ``src`` to ``dst`` carrying ``nbytes``.

        Charges a full round trip (the reply's latency is part of the
        RTT); reply payload is charged separately via :meth:`payload`.
        With ``checked=False`` the reachability check and per-message
        fault effects are skipped — used by the compound layer to charge
        sends whose delivery was already validated when each sub-op was
        absorbed (see :meth:`repro.ipc.compound.CompoundRegion.flush`).

        Queueing (concurrent mode): when the destination node has a
        finite server queue installed, the message reserves a service
        slot *after* fault effects ran — so a fault-delayed message
        arrives late and only then competes for a slot (it does **not**
        hold one while delayed in the network), and a dropped message
        never occupies the server at all.  The wait is charged to
        ``server_queue_wait``; a duplicated message occupies two slots,
        the way a real server would service both copies.
        """
        duplicated = False
        if checked:
            self._check_reachable(src, dst)
            if self.fault_plane is not None:
                # May raise MessageDroppedError, charge a delay, or ask
                # for the message to be duplicated.
                duplicated = self.fault_plane.on_send(src, dst, nbytes)
        queue = dst.server_queue
        if queue is not None:
            service_us = self.world.cost_model.server_service_time_us(nbytes)
            queue.admit(service_us)
            if duplicated:
                queue.admit(service_us)
        self._account(src, dst, nbytes)
        if duplicated:
            self._account(src, dst, nbytes)

    def _account(self, src: "Node", dst: "Node", nbytes: int) -> None:
        self.messages += 1
        self.bytes_moved += nbytes
        key = (src.name, dst.name)
        self.per_pair[key] = self.per_pair.get(key, 0) + 1
        self.per_pair_bytes[key] = self.per_pair_bytes.get(key, 0) + nbytes
        self.world.charge.network(nbytes)
        self.world.trace("network", "message", src=src.name, dst=dst.name,
                         bytes=nbytes)

    def payload(self, src: "Node", dst: "Node", nbytes: int) -> None:
        """Additional payload (e.g. a bulk reply) on an exchange whose
        round trip was already charged.  The reply rides the request's
        exchange, so scheduled fault events are *not* re-polled here —
        the request's send-time check covers the round trip."""
        self._check_reachable(src, dst, poll=False)
        self.bytes_moved += nbytes
        key = (src.name, dst.name)
        self.per_pair_bytes[key] = self.per_pair_bytes.get(key, 0) + nbytes
        self.world.charge.network_payload(nbytes)

    # --- failure injection -------------------------------------------------
    def partition(self, a: "Node", b: "Node") -> None:
        """Cut the link between two nodes (both directions)."""
        self._partitions.add(frozenset((a.name, b.name)))

    def heal(self, a: "Node", b: "Node") -> None:
        """Restore the link between two nodes."""
        self._partitions.discard(frozenset((a.name, b.name)))

    def heal_all(self) -> None:
        self._partitions.clear()

    def install_fault_plane(self, plane: "FaultPlane") -> None:
        self.fault_plane = plane

    def _check_reachable(
        self, src: "Node", dst: "Node", poll: bool = True
    ) -> None:
        if poll and self.fault_plane is not None:
            self.fault_plane.poll()
        if src.crashed or dst.crashed:
            down = src if src.crashed else dst
            raise NodeCrashedError(f"node {down.name!r} is crashed")
        if frozenset((src.name, dst.name)) in self._partitions:
            raise NetworkPartitionError(
                f"network partition between {src.name!r} and {dst.name!r}"
            )

    def ensure_reachable(self, src: "Node", dst: "Node") -> None:
        """Public reachability check — raises if the pair is partitioned
        or either end is crashed, after applying any scheduled fault
        events whose time has arrived.  Used by the compound layer to
        fail a batched sub-operation *before* it executes server-side."""
        self._check_reachable(src, dst)

    def message_count(self, src: "Node", dst: "Node") -> int:
        return self.per_pair.get((src.name, dst.name), 0)

    def bytes_count(self, src: "Node", dst: "Node") -> int:
        """Bytes carried from ``src`` to ``dst`` (requests plus replies
        travelling that direction)."""
        return self.per_pair_bytes.get((src.name, dst.name), 0)

    def inbound_bytes(self, node: "Node") -> int:
        """Total bytes delivered *to* ``node`` from every peer — the
        per-node hotness signal the sharded-DFS rebalancer reads."""
        name = node.name
        return sum(
            nbytes
            for (_, dst), nbytes in self.per_pair_bytes.items()
            if dst == name
        )
