"""Baselines: the monolithic SunOS 4.1.3 comparator of Table 3."""

from repro.baseline.sunos import SunOsCosts, SunOsFs

__all__ = ["SunOsCosts", "SunOsFs"]
