"""SunOS 4.1.3 baseline (Table 3).

"Table 3 shows the cost of open, read, write, and stat operations on
SunOS 4.1.3 running on the same hardware used for the Spring
measurements": open 127 us, 4KB read 82 us, 4KB write 86 us,
fstat 28 us.

The comparator is a monolithic in-kernel UNIX file system: one trap into
the kernel, namei, a buffer/page cache, no cross-domain calls, no
stacking.  We build it on the same :class:`~repro.storage.volume.Volume`
engine as Spring's disk layer so the on-disk substrate is identical and
only the *software architecture* differs — exactly the comparison the
paper is making ("SunOS is a production system and Spring is an untuned
research prototype").

Cost calibration (microseconds, per Table 3's cached numbers):

=========  ====================================================
open       trap 25 + namei 60 + file-table state 42      = 127
4KB read   trap 25 + bookkeeping 29 + 4KB uiomove 28     =  82
4KB write  trap 25 + bookkeeping 33 + 4KB uiomove 28     =  86
fstat      trap 25 + attribute copy 3                    =  28
=========  ====================================================
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.errors import UnixError
from repro.storage.block_device import BlockDevice
from repro.storage.inode import FileType
from repro.storage.volume import Volume
from repro.types import PAGE_SIZE, AccessRights
from repro.vm.page import PageStore

from repro.fs.attributes import FileAttributes


@dataclasses.dataclass
class SunOsCosts:
    """Calibrated per-operation CPU costs (see module docstring)."""

    trap_us: float = 25.0
    namei_us: float = 60.0
    open_state_us: float = 42.0
    read_bookkeeping_us: float = 29.0
    write_bookkeeping_us: float = 33.0
    fstat_copy_us: float = 3.0
    uiomove_per_kb_us: float = 7.0


@dataclasses.dataclass
class _Fd:
    ino: int
    position: int = 0


class SunOsFs:
    """Monolithic kernel file system with a unified buffer cache."""

    def __init__(
        self,
        world,
        device: BlockDevice,
        format_device: bool = True,
        cache: bool = True,
        costs: SunOsCosts = None,
    ) -> None:
        self.world = world
        self.costs = costs or SunOsCosts()
        self.cache_enabled = cache
        if format_device:
            self.volume = Volume.mkfs(device)
        else:
            self.volume = Volume.mount(device)
        self._pages: Dict[int, PageStore] = {}
        self._fds: Dict[int, _Fd] = {}
        self._next_fd = 3

    def _charge(self, us: float) -> None:
        self.world.clock.advance(us, "cpu")

    def _trap(self) -> None:
        self.world.clock.advance(self.costs.trap_us, "syscall")

    def _store(self, ino: int) -> PageStore:
        store = self._pages.get(ino)
        if store is None:
            store = PageStore()
            self._pages[ino] = store
        return store

    def _fault(self, ino: int):
        def fault(index: int, needed: AccessRights):
            data = self.volume.read_data(ino, index * PAGE_SIZE, PAGE_SIZE)
            return self._store(ino).install(index, data, needed)

        return fault

    # ---------------------------------------------------------------- syscalls
    def open(self, path: str, create: bool = False) -> int:
        self._trap()
        self._charge(self.costs.namei_us * max(1, path.strip("/").count("/") + 1))
        components = path.strip("/").split("/")
        current = self.volume.sb.root_ino
        try:
            for component in components[:-1]:
                current = self.volume.lookup(current, component)
            ino = self.volume.lookup(current, components[-1])
        except Exception:
            if not create:
                raise UnixError("ENOENT", path)
            ino = self.volume.create(current, components[-1], FileType.REGULAR).ino
        self._charge(self.costs.open_state_us)
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = _Fd(ino)
        return fd

    def _entry(self, fd: int) -> _Fd:
        try:
            return self._fds[fd]
        except KeyError:
            raise UnixError("EBADF", str(fd))

    def pread(self, fd: int, size: int, offset: int) -> bytes:
        entry = self._entry(fd)
        self._trap()
        self._charge(self.costs.read_bookkeeping_us)
        inode = self.volume.iget(entry.ino)
        if offset >= inode.size:
            return b""
        size = min(size, inode.size - offset)
        if self.cache_enabled:
            data = self._store(entry.ino).read(offset, size, self._fault(entry.ino))
        else:
            data = self.volume.read_data(entry.ino, offset, size)
        self._charge(self.costs.uiomove_per_kb_us * size / 1024)
        return data

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        entry = self._entry(fd)
        self._trap()
        self._charge(self.costs.write_bookkeeping_us)
        self._charge(self.costs.uiomove_per_kb_us * len(data) / 1024)
        if self.cache_enabled:
            self._store(entry.ino).write(offset, data, self._fault(entry.ino))
            inode = self.volume.iget(entry.ino)
            if offset + len(data) > inode.size:
                inode.size = offset + len(data)
            inode.mtime_us = inode.ctime_us = int(self.world.clock.now_us)
            self.volume.mark_dirty(entry.ino)
        else:
            self.volume.write_data(entry.ino, offset, data)
        return len(data)

    def read(self, fd: int, size: int) -> bytes:
        entry = self._entry(fd)
        data = self.pread(fd, size, entry.position)
        entry.position += len(data)
        return data

    def write(self, fd: int, data: bytes) -> int:
        entry = self._entry(fd)
        written = self.pwrite(fd, data, entry.position)
        entry.position += written
        return written

    def fstat(self, fd: int) -> FileAttributes:
        entry = self._entry(fd)
        self._trap()
        self._charge(self.costs.fstat_copy_us)
        return FileAttributes.from_inode(self.volume.iget(entry.ino))

    def fsync(self, fd: int) -> None:
        entry = self._entry(fd)
        self._trap()
        size = self.volume.iget(entry.ino).size
        for index, page in self._store(entry.ino).dirty_pages():
            offset = index * PAGE_SIZE
            usable = min(PAGE_SIZE, max(0, size - offset))
            if usable:
                self.volume.write_data(entry.ino, offset, page.snapshot()[:usable])
            page.dirty = False
        self.volume.sync()

    def close(self, fd: int) -> None:
        self._entry(fd)
        self._trap()
        del self._fds[fd]

    def mkdir_p(self, path: str) -> int:
        """Test helper: create directories along ``path``."""
        current = self.volume.sb.root_ino
        for component in path.strip("/").split("/"):
            try:
                current = self.volume.lookup(current, component)
            except Exception:
                current = self.volume.create(
                    current, component, FileType.DIRECTORY
                ).ino
        return current
