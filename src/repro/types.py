"""Shared primitive types and constants.

Offsets and sizes are plain ``int`` byte counts.  The page/block size is
fixed at 4 KiB, matching both the paper's benchmark transfer unit ("4KB
read"/"4KB write") and the SPARCstation page size.
"""

from __future__ import annotations

import enum

#: Size in bytes of a VM page and of a file-system block.  The paper's
#: coherency protocol is per-block; we use one size for both.
PAGE_SIZE = 4096

#: 1 KiB, used by cost-model per-KB charges.
KB = 1024


class AccessRights(enum.Enum):
    """Access mode for cached data, channel binds, and mappings.

    The paper's coherency protocol is single-writer/multiple-reader per
    block, so two modes suffice.
    """

    READ_ONLY = "read_only"
    READ_WRITE = "read_write"

    @property
    def writable(self) -> bool:
        return self is AccessRights.READ_WRITE

    def covers(self, requested: "AccessRights") -> bool:
        """True if data held with these rights satisfies ``requested``."""
        return self is AccessRights.READ_WRITE or requested is AccessRights.READ_ONLY


def page_range(offset: int, size: int) -> range:
    """Page indices touched by the byte range ``[offset, offset+size)``.

    >>> list(page_range(0, 4096))
    [0]
    >>> list(page_range(100, 8000))
    [0, 1]
    """
    if size <= 0:
        return range(0)
    first = offset // PAGE_SIZE
    last = (offset + size - 1) // PAGE_SIZE
    return range(first, last + 1)


def page_aligned(offset: int) -> bool:
    return offset % PAGE_SIZE == 0
