"""The simulation world.

A :class:`World` is one complete simulated installation: a virtual
clock, a cost model, a network, and a set of nodes each booted with a
nucleus domain, a VMM, and the standard name-space contexts.  Every
benchmark, example, and integration test starts by constructing a World.

The equivalent in the paper is the physical testbed; the World's
determinism (no wall clock, no global randomness) is what makes the
reproduced tables exactly repeatable.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ipc.domain import Credentials, Domain
from repro.ipc.network import Network
from repro.ipc.node import Node
from repro.sim.clock import SimClock
from repro.sim.costs import Charger, CostModel


class Counters:
    """Named event counters (invocation paths, protocol events, ...).

    File system layers and the VM use these to expose *mechanism*
    observables — e.g. how many page-ins crossed a layer boundary — which
    several figure reproductions assert on.
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        # try/except beats .get() on the hit path, and inc runs twice per
        # invocation — this is one of the hottest calls in the system.
        try:
            self._counts[name] += amount
        except KeyError:
            self._counts[name] = amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()

    def delta_since(self, snapshot: Dict[str, int]) -> Dict[str, int]:
        """Counters incremented since ``snapshot`` was taken."""
        return {
            name: value - snapshot.get(name, 0)
            for name, value in self._counts.items()
            if value - snapshot.get(name, 0) != 0
        }


class World:
    """One simulated installation of Spring machines."""

    def __init__(self, cost_model: Optional[CostModel] = None) -> None:
        self.clock = SimClock()
        self.cost_model = cost_model or CostModel()
        self.charge = Charger(self.clock, self.cost_model)
        self.network = Network(self)
        self.counters = Counters()
        self.nodes: Dict[str, Node] = {}
        self._next_oid = 1
        self._name_caches: List[object] = []
        #: Optional event tracing (see repro.sim.trace); None = off.
        self.tracer = None
        #: Optional invocation retry knobs (see repro.ipc.retry); None =
        #: transient failures surface immediately (the default).
        self.retry_policy = None
        #: Lazily created discrete-event scheduler (concurrent mode);
        #: None until :meth:`scheduler` is first called.
        self._scheduler = None
        #: Per-layer busy-time accounting stack (see
        #: :meth:`repro.fs.base.LayerRuntime.timed`); None = disabled,
        #: the zero-overhead default.
        self.busy_stack: Optional[list] = None

    def enable_tracing(self, capacity: int = 10_000):
        """Turn on event tracing; returns the tracer."""
        from repro.sim.trace import Tracer

        self.tracer = Tracer(capacity)
        return self.tracer

    # --- concurrency ----------------------------------------------------------
    def scheduler(self):
        """The world's discrete-event scheduler (created on first use) —
        the entry point to concurrent mode: spawn client coroutines on
        it and :meth:`~repro.sim.scheduler.Scheduler.run`.  Sequential
        code never touches it."""
        if self._scheduler is None:
            from repro.sim.scheduler import Scheduler

            self._scheduler = Scheduler(self)
        return self._scheduler

    def enable_layer_busy_accounting(self) -> None:
        """Turn on per-layer busy-time accounting at the channel
        dispatch spine (virtual time each layer spent servicing channel
        ops, exclusive of the layers below it).  Off by default: the
        accounting itself charges nothing, but staying out of the
        dispatch hot path keeps calibration runs exactly as fast."""
        if self.busy_stack is None:
            self.busy_stack = []

    # --- fault tolerance ------------------------------------------------------
    def install_fault_plan(self, plan):
        """Install a scripted failure schedule (see repro.sim.faults);
        returns the live :class:`~repro.sim.faults.FaultPlane`."""
        from repro.sim.faults import FaultPlane

        plane = FaultPlane(self, plan)
        self.network.install_fault_plane(plane)
        return plane

    def enable_retries(self, policy=None):
        """Turn on invocation-layer retry for transient network
        failures; returns the installed policy (the defaults of
        :class:`~repro.ipc.retry.RetryPolicy` if none is given)."""
        from repro.ipc.retry import RetryPolicy

        self.retry_policy = policy or RetryPolicy()
        return self.retry_policy

    def trace(self, category: str, name: str, **detail: object) -> None:
        if self.tracer is not None:
            self.tracer.record(self.clock.now_us, category, name, **detail)

    # --- identity ------------------------------------------------------------
    def next_oid(self) -> int:
        oid = self._next_oid
        self._next_oid += 1
        return oid

    # --- topology ------------------------------------------------------------
    def create_node(self, name: str) -> Node:
        """Boot a node: nucleus domain, VMM, and standard name space."""
        if name in self.nodes:
            raise ValueError(f"node {name!r} already exists")
        node = Node(self, name)
        self.nodes[name] = node
        # Late imports: the VMM and naming bootstrap sit above ipc in the
        # layering but below World in the public API.
        from repro.vm.vmm import Vmm

        node.vmm = Vmm(node.nucleus)
        from repro.naming.bootstrap import boot_naming

        boot_naming(node)
        return node

    def create_user_domain(self, node: Node, name: str = "user") -> Domain:
        """Convenience: an unprivileged client domain on ``node``."""
        return node.create_domain(name, Credentials(name, privileged=False))

    # --- name-cache invalidation fan-out ---------------------------------------
    def register_name_cache(self, cache: object) -> None:
        self._name_caches.append(cache)

    def name_event(self, context: object, component: str) -> None:
        """A context binding changed; notify every name cache."""
        for cache in self._name_caches:
            cache.on_name_event(context, component)  # type: ignore[attr-defined]
