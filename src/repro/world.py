"""The simulation world.

A :class:`World` is one complete simulated installation: a virtual
clock, a cost model, a network, and a set of nodes each booted with a
nucleus domain, a VMM, and the standard name-space contexts.  Every
benchmark, example, and integration test starts by constructing a World.

The equivalent in the paper is the physical testbed; the World's
determinism (no wall clock, no global randomness) is what makes the
reproduced tables exactly repeatable.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ipc.domain import Credentials, Domain
from repro.ipc.network import Network
from repro.ipc.node import Node
from repro.sim.clock import SimClock
from repro.sim.costs import Charger, CostModel


class Counters:
    """Named event counters (invocation paths, protocol events, ...).

    File system layers and the VM use these to expose *mechanism*
    observables — e.g. how many page-ins crossed a layer boundary — which
    several figure reproductions assert on.
    """

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        # try/except beats .get() on the hit path, and inc runs twice per
        # invocation — this is one of the hottest calls in the system.
        try:
            self._counts[name] += amount
        except KeyError:
            self._counts[name] = amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def snapshot(self) -> Dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()

    def delta_since(self, snapshot: Dict[str, int]) -> Dict[str, int]:
        """Counters incremented since ``snapshot`` was taken."""
        return {
            name: value - snapshot.get(name, 0)
            for name, value in self._counts.items()
            if value - snapshot.get(name, 0) != 0
        }


class World:
    """One simulated installation of Spring machines."""

    def __init__(self, cost_model: Optional[CostModel] = None) -> None:
        self.clock = SimClock()
        self.cost_model = cost_model or CostModel()
        self.charge = Charger(self.clock, self.cost_model)
        self.network = Network(self)
        self.counters = Counters()
        self.nodes: Dict[str, Node] = {}
        self._next_oid = 1
        self._name_caches: List[object] = []
        #: Every mounted :class:`~repro.storage.volume.Volume`, so
        #: :meth:`save` can quiesce the whole installation in one sweep.
        self._volumes: List[object] = []
        #: Optional event tracing (see repro.sim.trace); None = off.
        self.tracer = None
        #: Optional invocation retry knobs (see repro.ipc.retry); None =
        #: transient failures surface immediately (the default).
        self.retry_policy = None
        #: Lazily created discrete-event scheduler (concurrent mode);
        #: None until :meth:`scheduler` is first called.
        self._scheduler = None
        #: Per-layer busy-time accounting stack (see
        #: :meth:`repro.fs.base.LayerRuntime.timed`); None = disabled,
        #: the zero-overhead default.
        self.busy_stack: Optional[list] = None

    def enable_tracing(self, capacity: int = 10_000):
        """Turn on event tracing; returns the tracer."""
        from repro.sim.trace import Tracer

        self.tracer = Tracer(capacity)
        return self.tracer

    # --- concurrency ----------------------------------------------------------
    def scheduler(self):
        """The world's discrete-event scheduler (created on first use) —
        the entry point to concurrent mode: spawn client coroutines on
        it and :meth:`~repro.sim.scheduler.Scheduler.run`.  Sequential
        code never touches it."""
        if self._scheduler is None:
            from repro.sim.scheduler import Scheduler

            self._scheduler = Scheduler(self)
        return self._scheduler

    def enable_layer_busy_accounting(self) -> None:
        """Turn on per-layer busy-time accounting at the channel
        dispatch spine (virtual time each layer spent servicing channel
        ops, exclusive of the layers below it).  Off by default: the
        accounting itself charges nothing, but staying out of the
        dispatch hot path keeps calibration runs exactly as fast."""
        if self.busy_stack is None:
            self.busy_stack = []

    # --- fault tolerance ------------------------------------------------------
    def install_fault_plan(self, plan):
        """Install a scripted failure schedule (see repro.sim.faults);
        returns the live :class:`~repro.sim.faults.FaultPlane`."""
        from repro.sim.faults import FaultPlane

        plane = FaultPlane(self, plan)
        self.network.install_fault_plane(plane)
        return plane

    def enable_retries(self, policy=None):
        """Turn on invocation-layer retry for transient network
        failures; returns the installed policy (the defaults of
        :class:`~repro.ipc.retry.RetryPolicy` if none is given)."""
        from repro.ipc.retry import RetryPolicy

        self.retry_policy = policy or RetryPolicy()
        return self.retry_policy

    def trace(self, category: str, name: str, **detail: object) -> None:
        if self.tracer is not None:
            self.tracer.record(self.clock.now_us, category, name, **detail)

    # --- identity ------------------------------------------------------------
    def next_oid(self) -> int:
        oid = self._next_oid
        self._next_oid += 1
        return oid

    # --- topology ------------------------------------------------------------
    def create_node(self, name: str) -> Node:
        """Boot a node: nucleus domain, VMM, and standard name space."""
        if name in self.nodes:
            raise ValueError(f"node {name!r} already exists")
        node = Node(self, name)
        self.nodes[name] = node
        # Late imports: the VMM and naming bootstrap sit above ipc in the
        # layering but below World in the public API.
        from repro.vm.vmm import Vmm

        node.vmm = Vmm(node.nucleus)
        from repro.naming.bootstrap import boot_naming

        boot_naming(node)
        return node

    def create_user_domain(self, node: Node, name: str = "user") -> Domain:
        """Convenience: an unprivileged client domain on ``node``."""
        return node.create_domain(name, Credentials(name, privileged=False))

    # --- persistent worlds -----------------------------------------------------
    def register_volume(self, volume: object) -> None:
        """Track a mounted volume (Volume.mkfs/mount call this)."""
        if volume not in self._volumes:
            self._volumes.append(volume)

    def create_image(
        self,
        domain: Domain,
        path: str,
        num_blocks: int,
        block_size: int = 4096,
        name: str = "img",
    ):
        """A :class:`~repro.storage.block_device.BlockDevice` over a NEW
        sparse image file at ``path`` — format it with ``Volume.mkfs``
        (or ``create_sfs(..., format_device=True)``) and the world's
        file state survives this process."""
        from repro.storage.block_device import BlockDevice
        from repro.storage.blockstore import ImageBlockStore

        store = ImageBlockStore.create(path, num_blocks, block_size)
        return BlockDevice(domain, name, store=store)

    def open_image(self, domain: Domain, path: str, name: str = "img"):
        """A :class:`~repro.storage.block_device.BlockDevice` over an
        EXISTING image file (geometry comes from the image header) —
        mount it with ``Volume.mount`` or ``create_sfs(...,
        format_device=False)`` to reopen a previously saved world."""
        from repro.storage.block_device import BlockDevice
        from repro.storage.blockstore import ImageBlockStore

        return BlockDevice(domain, name, store=ImageBlockStore.open(path))

    def save(self) -> int:
        """Quiesce every file system in the installation: push dirty
        pages and attributes down every bound stack (``sync_fs``), then
        cleanly unmount every registered volume — ordered metadata
        flush, CLEAN superblock, backing-store flush.  Volumes on image
        devices are durable on disk afterwards.  The world stays usable:
        the next mutation lazily re-dirties its volume's superblock.
        Returns total blocks written."""
        for node in self.nodes.values():
            fs_context = getattr(node, "fs_context", None)
            if fs_context is None:
                continue
            for _name, obj in fs_context.list_bindings():
                sync = getattr(obj, "sync_fs", None)
                if sync is not None:
                    sync()
        written = 0
        for volume in self._volumes:
            written += volume.unmount()  # type: ignore[attr-defined]
        return written

    # --- name-cache invalidation fan-out ---------------------------------------
    def register_name_cache(self, cache: object) -> None:
        self._name_caches.append(cache)

    def name_event(self, context: object, component: str) -> None:
        """A context binding changed; notify every name cache."""
        for cache in self._name_caches:
            cache.on_name_event(context, component)  # type: ignore[attr-defined]
