"""Pluggable block-store backends for :class:`~repro.storage.block_device.BlockDevice`.

The simulated device charges latency, enforces geometry, and injects
faults; *where the block bytes live* is this module's concern.  The
``BlockStore`` contract is deliberately tiny so a backend stays dumb:

* ``read(index)`` — one block, or ``None`` for a block never written
  (the device substitutes its interned zero block);
* ``read_run(start, count)`` — ``count`` contiguous blocks as one
  buffer, holes zero-filled;
* ``write(index, data)`` / ``write_run(start, data)`` — whole-block
  writes.  ``data`` may be any buffer (``bytes``, ``bytearray``,
  ``memoryview``): the store materializes exactly once at its own
  boundary, per the zero-copy ownership contract (DESIGN.md sec. 7) —
  which is what lets a page snapshot ride a ``memoryview`` all the way
  into the image file without an intermediate copy;
* ``flush()`` / ``close()`` — durability points (no-ops in memory).

Two backends:

* :class:`MemoryBlockStore` — the dict the device always used; volumes
  on it are exactly as fast and exactly as volatile as before.
* :class:`ImageBlockStore` — a sparse disk-image *file*: a one-page
  header (magic, version, geometry) followed by the raw block array.
  A volume formatted onto it (superblock, cylinder groups, i-node
  table — see docs/ONDISK.md) survives process restarts, and multi-GB
  volumes cost disk space, not RAM.
"""

from __future__ import annotations

import os
import struct
from typing import Dict, Optional

from repro.errors import DeviceError

#: Image header: magic, format version, block size, block count.  The
#: header owns the first :data:`HEADER_SIZE` bytes of the file; block
#: ``i`` lives at ``HEADER_SIZE + i * block_size``.
IMAGE_MAGIC = b"SPRIMG1\x00"
IMAGE_VERSION = 1
HEADER_SIZE = 4096
_HEADER = struct.Struct("<8sIII")


class BlockStore:
    """Contract for block backends (see module docstring).

    ``num_blocks`` and ``block_size`` are fixed at construction; the
    owning device adopts them.
    """

    num_blocks: int
    block_size: int

    def read(self, index: int) -> Optional[bytes]:
        raise NotImplementedError

    def read_run(self, start: int, count: int) -> bytes:
        raise NotImplementedError

    def write(self, index: int, data) -> None:
        raise NotImplementedError

    def write_run(self, start: int, data) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Push buffered writes to the backing medium (if any)."""

    def close(self) -> None:
        """Flush and release the backing medium."""

    @property
    def persistent(self) -> bool:
        """Whether blocks survive the death of this process."""
        return False

    def written_count(self) -> int:
        """Blocks written through this store instance — a test and
        capacity-reporting aid, not part of the durable state."""
        raise NotImplementedError


class MemoryBlockStore(BlockStore):
    """The classic in-memory backend: a dict of materialized blocks.

    Unwritten blocks read as ``None`` so the device can hand out its
    interned zero page without a copy.
    """

    __slots__ = ("num_blocks", "block_size", "_blocks")

    def __init__(self, num_blocks: int, block_size: int) -> None:
        self.num_blocks = num_blocks
        self.block_size = block_size
        self._blocks: Dict[int, bytes] = {}

    def read(self, index: int) -> Optional[bytes]:
        return self._blocks.get(index)

    def read_run(self, start: int, count: int) -> bytes:
        blocks = self._blocks
        zero = b"\x00" * self.block_size
        out = bytearray()
        for index in range(start, start + count):
            data = blocks.get(index)
            out += data if data is not None else zero
        return bytes(out)

    def write(self, index: int, data) -> None:
        # Materialize exactly once at the storage boundary: ``data`` may
        # be a memoryview riding down from a page snapshot.
        self._blocks[index] = bytes(data)

    def write_run(self, start: int, data) -> None:
        bs = self.block_size
        count = len(data) // bs
        for i in range(count):
            self._blocks[start + i] = bytes(data[i * bs : (i + 1) * bs])

    def written_count(self) -> int:
        return len(self._blocks)


class ImageBlockStore(BlockStore):
    """A file-backed block array — the persistent half of the volume
    format (docs/ONDISK.md).

    The image is created sparse (``truncate`` to its full logical size),
    so untouched regions of a large volume cost no disk space and read
    as zeros.  ``write`` accepts any buffer and passes it straight to
    ``file.write`` — no intermediate ``bytes()`` copy.
    """

    __slots__ = ("num_blocks", "block_size", "path", "_file", "_written", "_closed")

    def __init__(self, path: str, file, num_blocks: int, block_size: int) -> None:
        self.path = path
        self._file = file
        self.num_blocks = num_blocks
        self.block_size = block_size
        #: Blocks written through THIS handle (session-local aid).
        self._written: set = set()
        self._closed = False

    # ------------------------------------------------------------- lifecycle
    @classmethod
    def create(cls, path: str, num_blocks: int, block_size: int) -> "ImageBlockStore":
        """Format a new image file (truncating any existing one)."""
        if num_blocks <= 0 or block_size <= 0:
            raise DeviceError("image geometry must be positive")
        fh = open(path, "w+b")
        header = bytearray(HEADER_SIZE)
        _HEADER.pack_into(header, 0, IMAGE_MAGIC, IMAGE_VERSION, block_size, num_blocks)
        fh.write(header)
        fh.truncate(HEADER_SIZE + num_blocks * block_size)
        fh.flush()
        return cls(path, fh, num_blocks, block_size)

    @classmethod
    def open(cls, path: str) -> "ImageBlockStore":
        """Open an existing image, reading geometry from its header."""
        try:
            fh = open(path, "r+b")
        except OSError as exc:
            raise DeviceError(f"cannot open image {path!r}: {exc}") from exc
        raw = fh.read(_HEADER.size)
        if len(raw) < _HEADER.size:
            fh.close()
            raise DeviceError(f"image {path!r} is truncated (no header)")
        magic, version, block_size, num_blocks = _HEADER.unpack(raw)
        if magic != IMAGE_MAGIC:
            fh.close()
            raise DeviceError(f"image {path!r}: bad magic {magic!r}")
        if version > IMAGE_VERSION:
            fh.close()
            raise DeviceError(
                f"image {path!r}: format version {version} is newer than "
                f"this build understands ({IMAGE_VERSION})"
            )
        expected = HEADER_SIZE + num_blocks * block_size
        actual = os.fstat(fh.fileno()).st_size
        if actual < expected:
            fh.close()
            raise DeviceError(
                f"image {path!r} is short: {actual} bytes, header "
                f"promises {expected}"
            )
        return cls(path, fh, num_blocks, block_size)

    # ------------------------------------------------------------------ I/O
    def _offset(self, index: int) -> int:
        return HEADER_SIZE + index * self.block_size

    def read(self, index: int) -> Optional[bytes]:
        self._check_open()
        self._file.seek(self._offset(index))
        return self._file.read(self.block_size)

    def read_run(self, start: int, count: int) -> bytes:
        self._check_open()
        self._file.seek(self._offset(start))
        return self._file.read(count * self.block_size)

    def write(self, index: int, data) -> None:
        self._check_open()
        self._file.seek(self._offset(index))
        self._file.write(data)
        self._written.add(index)

    def write_run(self, start: int, data) -> None:
        self._check_open()
        self._file.seek(self._offset(start))
        self._file.write(data)
        self._written.update(range(start, start + len(data) // self.block_size))

    def flush(self) -> None:
        if not self._closed:
            self._file.flush()

    def close(self) -> None:
        if not self._closed:
            self._file.flush()
            self._file.close()
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise DeviceError(f"image {self.path!r} is closed")

    @property
    def persistent(self) -> bool:
        return True

    def written_count(self) -> int:
        return len(self._written)
