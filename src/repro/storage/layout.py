"""On-disk layout of the UFS-like base file system.

The disk layer "implements an on-disk UFS-compatible file system" (paper
sec. 6.2 / Figure 10).  We keep a classic layout:

    block 0                superblock
    blocks 1..B            block allocation bitmap
    blocks B+1..B+I        i-node table
    blocks B+I+1..         data blocks

All multi-byte integers are little-endian, packed with :mod:`struct`.
"""

from __future__ import annotations

import dataclasses
import struct

from repro.errors import StorageError

MAGIC = 0x53465331  # "SFS1"

#: Superblock: magic, block_size, num_blocks, bitmap_start, bitmap_blocks,
#: inode_table_start, inode_table_blocks, inode_count, data_start, root_ino.
_SUPERBLOCK = struct.Struct("<10I")


@dataclasses.dataclass
class SuperBlock:
    block_size: int
    num_blocks: int
    bitmap_start: int
    bitmap_blocks: int
    inode_table_start: int
    inode_table_blocks: int
    inode_count: int
    data_start: int
    root_ino: int

    def pack(self) -> bytes:
        return _SUPERBLOCK.pack(
            MAGIC,
            self.block_size,
            self.num_blocks,
            self.bitmap_start,
            self.bitmap_blocks,
            self.inode_table_start,
            self.inode_table_blocks,
            self.inode_count,
            self.data_start,
            self.root_ino,
        )

    @classmethod
    def unpack(cls, raw: bytes) -> "SuperBlock":
        fields = _SUPERBLOCK.unpack_from(raw)
        if fields[0] != MAGIC:
            raise StorageError(
                f"bad superblock magic {fields[0]:#x}; device not formatted?"
            )
        return cls(*fields[1:])

    @classmethod
    def compute(cls, block_size: int, num_blocks: int, inode_count: int) -> "SuperBlock":
        """Derive a layout for a device of ``num_blocks`` blocks."""
        from repro.storage.inode import INODE_SIZE

        bits_per_block = block_size * 8
        bitmap_blocks = (num_blocks + bits_per_block - 1) // bits_per_block
        inodes_per_block = block_size // INODE_SIZE
        inode_table_blocks = (inode_count + inodes_per_block - 1) // inodes_per_block
        bitmap_start = 1
        inode_table_start = bitmap_start + bitmap_blocks
        data_start = inode_table_start + inode_table_blocks
        if data_start >= num_blocks:
            raise StorageError(
                f"device too small: metadata needs {data_start} of "
                f"{num_blocks} blocks"
            )
        return cls(
            block_size=block_size,
            num_blocks=num_blocks,
            bitmap_start=bitmap_start,
            bitmap_blocks=bitmap_blocks,
            inode_table_start=inode_table_start,
            inode_table_blocks=inode_table_blocks,
            inode_count=inode_count,
            data_start=data_start,
            root_ino=1,
        )
