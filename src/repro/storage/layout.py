"""On-disk layout of the UFS-like base file system.

The disk layer "implements an on-disk UFS-compatible file system" (paper
sec. 6.2 / Figure 10).  Since PR 9 the layout is the version-2, FFS-style
format described byte-for-byte in docs/ONDISK.md: a versioned superblock
carrying a clean/dirty state flag, and the metadata organised in
*cylinder groups* — each group holding its own block bitmap, its slice
of the i-node table, and its data blocks, so allocation can keep an
i-node's blocks near its group the way McKusick's FFS does.

With one cylinder group (the default, and the geometry every pre-PR-9
volume used) the layout degenerates to the classic arrangement and is
*behaviour-identical* to the legacy format:

    block 0                superblock
    blocks 1..B            block allocation bitmap (whole device)
    blocks B+1..B+I        i-node table
    blocks B+I+1..         data blocks

With ``G > 1`` groups, block 0 is still the superblock and the rest of
the device is carved into G equal regions of ``cg_size`` blocks:

    group g = blocks 1+g*cg_size .. 1+(g+1)*cg_size-1
        bitmap blocks          (covering the group's own span)
        i-node table blocks    (i-nodes g*cg_inodes .. (g+1)*cg_inodes-1)
        data blocks

All multi-byte integers are little-endian, packed with :mod:`struct`.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import List

from repro.errors import StorageError

MAGIC = 0x53465331  # "SFS1"
#: On-disk format revision.  Version 2 added the state flag and the
#: cylinder-group geometry (PR 9); older revisions never shipped in a
#: persistent image, so unpack accepts only version 2.
VERSION = 2

#: Superblock ``state`` values: CLEAN is written only by a successful
#: unmount, *after* every other structure is on disk; anything else at
#: mount time means the volume may carry torn metadata and fsck should
#: look (see docs/ONDISK.md "Flush ordering").
STATE_CLEAN = 1
STATE_DIRTY = 2

#: Superblock: magic, version, state, block_size, num_blocks,
#: inode_count, root_ino, cg_count, cg_size, cg_inodes, bitmap_start,
#: bitmap_blocks, inode_table_start, inode_table_blocks, data_start,
#: checksum.  The bitmap/inode-table/data fields describe cylinder
#: group 0; other groups are derived (uniform geometry).
_SUPERBLOCK = struct.Struct("<16I")
_CHECKSUM_MASK = 0xFFFFFFFF


@dataclasses.dataclass(frozen=True)
class CylinderGroup:
    """Geometry of one cylinder group: where its bitmap, i-node table
    slice, and data region live, and which i-nodes it owns."""

    index: int
    start: int          # first block of the group region
    end: int            # one past the last block
    bitmap_start: int
    bitmap_blocks: int
    inode_start: int
    inode_blocks: int
    ino_base: int       # first i-node number owned by this group
    inode_count: int    # i-nodes owned by this group
    data_start: int     # first data block

    @property
    def data_blocks(self) -> int:
        return self.end - self.data_start


@dataclasses.dataclass
class SuperBlock:
    block_size: int
    num_blocks: int
    bitmap_start: int
    bitmap_blocks: int
    inode_table_start: int
    inode_table_blocks: int
    inode_count: int
    data_start: int
    root_ino: int
    version: int = VERSION
    state: int = STATE_DIRTY
    cg_count: int = 1
    cg_size: int = 0          # blocks per group region (0 = single-group)
    cg_inodes: int = 0        # i-nodes per group (0 = single-group)

    def pack(self) -> bytes:
        fields = [
            MAGIC,
            self.version,
            self.state,
            self.block_size,
            self.num_blocks,
            self.inode_count,
            self.root_ino,
            self.cg_count,
            self.cg_size,
            self.cg_inodes,
            self.bitmap_start,
            self.bitmap_blocks,
            self.inode_table_start,
            self.inode_table_blocks,
            self.data_start,
        ]
        checksum = sum(fields) & _CHECKSUM_MASK
        return _SUPERBLOCK.pack(*fields, checksum)

    @classmethod
    def unpack(cls, raw: bytes) -> "SuperBlock":
        fields = _SUPERBLOCK.unpack_from(raw)
        if fields[0] != MAGIC:
            raise StorageError(
                f"bad superblock magic {fields[0]:#x}; device not formatted?"
            )
        if fields[1] != VERSION:
            raise StorageError(
                f"superblock format version {fields[1]} not supported "
                f"(this build reads version {VERSION})"
            )
        if sum(fields[:-1]) & _CHECKSUM_MASK != fields[-1]:
            raise StorageError("superblock checksum mismatch; torn write?")
        (
            _magic, version, state, block_size, num_blocks, inode_count,
            root_ino, cg_count, cg_size, cg_inodes, bitmap_start,
            bitmap_blocks, inode_table_start, inode_table_blocks,
            data_start, _checksum,
        ) = fields
        return cls(
            block_size=block_size,
            num_blocks=num_blocks,
            bitmap_start=bitmap_start,
            bitmap_blocks=bitmap_blocks,
            inode_table_start=inode_table_start,
            inode_table_blocks=inode_table_blocks,
            inode_count=inode_count,
            data_start=data_start,
            root_ino=root_ino,
            version=version,
            state=state,
            cg_count=cg_count,
            cg_size=cg_size,
            cg_inodes=cg_inodes,
        )

    @classmethod
    def compute(
        cls,
        block_size: int,
        num_blocks: int,
        inode_count: int,
        cylinder_groups: int = 1,
    ) -> "SuperBlock":
        """Derive a layout for a device of ``num_blocks`` blocks.

        ``cylinder_groups=1`` (the default) produces the classic legacy
        arrangement; larger counts carve the device into uniform group
        regions (``inode_count`` is rounded up to a multiple of the
        group count)."""
        from repro.storage.inode import INODE_SIZE

        bits_per_block = block_size * 8
        inodes_per_block = block_size // INODE_SIZE
        if cylinder_groups < 1:
            raise StorageError("need at least one cylinder group")

        if cylinder_groups == 1:
            bitmap_blocks = (num_blocks + bits_per_block - 1) // bits_per_block
            inode_table_blocks = (
                inode_count + inodes_per_block - 1
            ) // inodes_per_block
            bitmap_start = 1
            inode_table_start = bitmap_start + bitmap_blocks
            data_start = inode_table_start + inode_table_blocks
            if data_start >= num_blocks:
                raise StorageError(
                    f"device too small: metadata needs {data_start} of "
                    f"{num_blocks} blocks"
                )
            return cls(
                block_size=block_size,
                num_blocks=num_blocks,
                bitmap_start=bitmap_start,
                bitmap_blocks=bitmap_blocks,
                inode_table_start=inode_table_start,
                inode_table_blocks=inode_table_blocks,
                inode_count=inode_count,
                data_start=data_start,
                root_ino=1,
                cg_count=1,
                cg_size=0,
                cg_inodes=0,
            )

        cg_inodes = (inode_count + cylinder_groups - 1) // cylinder_groups
        inode_count = cg_inodes * cylinder_groups
        cg_size = (num_blocks - 1) // cylinder_groups
        bitmap_blocks = (cg_size + bits_per_block - 1) // bits_per_block
        inode_table_blocks = (cg_inodes + inodes_per_block - 1) // inodes_per_block
        overhead = bitmap_blocks + inode_table_blocks
        if cg_size <= overhead:
            raise StorageError(
                f"device too small for {cylinder_groups} cylinder groups: "
                f"each group of {cg_size} blocks needs {overhead} metadata "
                f"blocks"
            )
        return cls(
            block_size=block_size,
            num_blocks=num_blocks,
            bitmap_start=1,
            bitmap_blocks=bitmap_blocks,
            inode_table_start=1 + bitmap_blocks,
            inode_table_blocks=inode_table_blocks,
            inode_count=inode_count,
            data_start=1 + overhead,
            root_ino=1,
            cg_count=cylinder_groups,
            cg_size=cg_size,
            cg_inodes=cg_inodes,
        )

    # ------------------------------------------------------------- geometry
    def groups(self) -> List[CylinderGroup]:
        """The cylinder groups of this layout, in disk order.  The
        single-group case describes the whole legacy layout as group 0
        (spanning block 0 so its bitmap bits are the classic absolute
        bit-per-block image)."""
        if self.cg_count == 1:
            return [
                CylinderGroup(
                    index=0,
                    start=0,
                    end=self.num_blocks,
                    bitmap_start=self.bitmap_start,
                    bitmap_blocks=self.bitmap_blocks,
                    inode_start=self.inode_table_start,
                    inode_blocks=self.inode_table_blocks,
                    ino_base=0,
                    inode_count=self.inode_count,
                    data_start=self.data_start,
                )
            ]
        out = []
        overhead = self.bitmap_blocks + self.inode_table_blocks
        for g in range(self.cg_count):
            start = 1 + g * self.cg_size
            out.append(
                CylinderGroup(
                    index=g,
                    start=start,
                    end=start + self.cg_size,
                    bitmap_start=start,
                    bitmap_blocks=self.bitmap_blocks,
                    inode_start=start + self.bitmap_blocks,
                    inode_blocks=self.inode_table_blocks,
                    ino_base=g * self.cg_inodes,
                    inode_count=self.cg_inodes,
                    data_start=start + overhead,
                )
            )
        return out

    def group_of_ino(self, ino: int) -> int:
        if self.cg_count == 1:
            return 0
        return ino // self.cg_inodes

    def is_data_block(self, index: int) -> bool:
        """Whether ``index`` is inside some group's data region — the
        only blocks the allocator may hand out."""
        if self.cg_count == 1:
            return self.data_start <= index < self.num_blocks
        if index < 1:
            return False
        g, within = divmod(index - 1, self.cg_size)
        if g >= self.cg_count:
            return False  # slack blocks past the last group
        return within >= self.bitmap_blocks + self.inode_table_blocks
