"""I-nodes.

Fixed 128-byte records with 12 direct block pointers, one single-indirect
and one double-indirect pointer — the McKusick-style geometry the paper's
disk layer ("an on-disk UFS compatible file system") implies.
Timestamps are virtual-clock microseconds.
"""

from __future__ import annotations

import dataclasses
import enum
import struct
from typing import List

from repro.errors import StorageError

INODE_SIZE = 128
NUM_DIRECT = 12

#: type, nlink, size, atime, mtime, ctime, 12 direct, indirect, dbl_indirect
_INODE = struct.Struct("<HHIqqq12III" + "40x")
assert _INODE.size == INODE_SIZE, _INODE.size


class FileType(enum.IntEnum):
    FREE = 0
    REGULAR = 1
    DIRECTORY = 2


@dataclasses.dataclass
class Inode:
    """In-memory image of one on-disk i-node."""

    ino: int
    type: FileType = FileType.FREE
    nlink: int = 0
    size: int = 0
    atime_us: int = 0
    mtime_us: int = 0
    ctime_us: int = 0
    direct: List[int] = dataclasses.field(default_factory=lambda: [0] * NUM_DIRECT)
    indirect: int = 0
    dbl_indirect: int = 0

    def pack(self) -> bytes:
        if len(self.direct) != NUM_DIRECT:
            raise StorageError("direct pointer array corrupted")
        return _INODE.pack(
            int(self.type),
            self.nlink,
            self.size,
            self.atime_us,
            self.mtime_us,
            self.ctime_us,
            *self.direct,
            self.indirect,
            self.dbl_indirect,
        )

    @classmethod
    def unpack(cls, ino: int, raw: bytes) -> "Inode":
        fields = _INODE.unpack_from(raw)
        return cls(
            ino=ino,
            type=FileType(fields[0]),
            nlink=fields[1],
            size=fields[2],
            atime_us=fields[3],
            mtime_us=fields[4],
            ctime_us=fields[5],
            direct=list(fields[6 : 6 + NUM_DIRECT]),
            indirect=fields[6 + NUM_DIRECT],
            dbl_indirect=fields[7 + NUM_DIRECT],
        )

    @property
    def is_dir(self) -> bool:
        return self.type is FileType.DIRECTORY

    @property
    def allocated(self) -> bool:
        return self.type is not FileType.FREE


def max_file_blocks(block_size: int) -> int:
    """Largest file representable with this geometry, in blocks."""
    pointers_per_block = block_size // 4
    return NUM_DIRECT + pointers_per_block + pointers_per_block * pointers_per_block
