"""Storage substrate: simulated block devices, pluggable block-store
backends (in-memory and persistent disk images), and the UFS-like
on-disk file system engine used by the disk layer."""

from repro.storage.allocator import BlockAllocator
from repro.storage.block_device import BlockDevice, RamDevice
from repro.storage.blockstore import (
    BlockStore,
    ImageBlockStore,
    MemoryBlockStore,
)
from repro.storage.directory import pack_entries, unpack_entries
from repro.storage.inode import INODE_SIZE, NUM_DIRECT, FileType, Inode
from repro.storage.layout import (
    STATE_CLEAN,
    STATE_DIRTY,
    CylinderGroup,
    SuperBlock,
)
from repro.storage.volume import Volume

__all__ = [
    "BlockAllocator",
    "BlockDevice",
    "BlockStore",
    "CylinderGroup",
    "ImageBlockStore",
    "MemoryBlockStore",
    "RamDevice",
    "pack_entries",
    "unpack_entries",
    "INODE_SIZE",
    "NUM_DIRECT",
    "FileType",
    "Inode",
    "STATE_CLEAN",
    "STATE_DIRTY",
    "SuperBlock",
    "Volume",
]
