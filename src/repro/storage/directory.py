"""Directory block format.

Directory contents are stored in the directory file's data blocks as a
packed sequence of variable-length entries:

    u32 ino | u16 name_len | name bytes (utf-8)

An entry with ino == 0 never appears — entries are rewritten compactly
on every change, which keeps the format trivially consistent at the cost
of rewriting the directory file.  Directories in this reproduction are
small (the paper's benchmarks use single-component lookups), so the
simplicity is the right trade.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.errors import StorageError

_ENTRY_HEAD = struct.Struct("<IH")
MAX_NAME_LEN = 255


def pack_entries(entries: Dict[str, int]) -> bytes:
    """Serialize a name -> ino mapping, sorted for determinism."""
    out = bytearray()
    for name, ino in sorted(entries.items()):
        encoded = name.encode("utf-8")
        if not 0 < len(encoded) <= MAX_NAME_LEN:
            raise StorageError(f"bad directory entry name {name!r}")
        if ino == 0:
            raise StorageError("directory entry with ino 0")
        out += _ENTRY_HEAD.pack(ino, len(encoded))
        out += encoded
    return bytes(out)


def unpack_entries(raw: bytes) -> Dict[str, int]:
    """Parse directory file contents back into a name -> ino mapping."""
    entries: Dict[str, int] = {}
    position = 0
    while position + _ENTRY_HEAD.size <= len(raw):
        ino, name_len = _ENTRY_HEAD.unpack_from(raw, position)
        if ino == 0:
            break  # zero padding at the tail of the last block
        position += _ENTRY_HEAD.size
        if position + name_len > len(raw):
            raise StorageError("truncated directory entry")
        name = raw[position : position + name_len].decode("utf-8")
        position += name_len
        if name in entries:
            raise StorageError(f"duplicate directory entry {name!r}")
        entries[name] = ino
    return entries
