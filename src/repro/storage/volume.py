"""The on-disk file system engine.

A :class:`Volume` is the UFS-like structure the paper's *disk layer*
manages (sec. 6.2, Figure 10): superblock, block bitmaps, i-node table,
directories, and file data, all living on a :class:`BlockDevice` — and,
since PR 9, in the version-2 FFS-style on-disk format (docs/ONDISK.md):
a versioned superblock with a clean/dirty state flag and cylinder-group
regions each holding a block bitmap, an i-node table slice, and data
blocks.  Put the device on an
:class:`~repro.storage.blockstore.ImageBlockStore` and the whole volume
survives process restarts.

Caching policy mirrors the paper's description of the disk layer:

* "The disk layer maintains its own cache to handle open and stat
  operations without requiring disk I/Os" — the i-node table and a
  dentry cache are memory-resident (plus a write-back metadata buffer
  cache for bitmap and indirect blocks);
* "but reads and writes to the disk layer do require disk I/Os" — file
  *data* blocks are never cached here.  Data caching belongs to the
  coherency layer and the VMMs above.

Durability lifecycle: ``mkfs`` writes the superblock DIRTY; a clean
:meth:`unmount` flushes everything in the recovery-safe order (bitmaps,
then indirect blocks, then i-nodes) and only then writes the superblock
CLEAN.  :meth:`mount` records whether the previous session unmounted
cleanly (:attr:`was_clean`) and lazily re-dirties the on-disk
superblock on the first mutation.  A crash between flush steps can
therefore leak allocated-but-unreferenced blocks but never corrupt a
referenced one; :meth:`fsck` detects the dirty superblock and, with
``repair=True``, frees leaks, reclaims lost allocations, duplicates
doubly-claimed blocks, prunes dangling entries, and fixes link counts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import (
    DirectoryNotEmptyError,
    FileExistsError_,
    FileNotFoundError_,
    IsADirectoryError_,
    NoSpaceError,
    NotADirectoryError_,
    StorageError,
)
from repro.storage.allocator import BlockAllocator
from repro.storage.block_device import BlockDevice
from repro.storage.directory import pack_entries, unpack_entries
from repro.storage.inode import INODE_SIZE, NUM_DIRECT, FileType, Inode
from repro.storage.layout import STATE_CLEAN, STATE_DIRTY, SuperBlock


class Volume:
    """A mounted UFS-like volume."""

    def __init__(self, device: BlockDevice, superblock: SuperBlock) -> None:
        self.device = device
        self.sb = superblock
        self._pointers_per_block = superblock.block_size // 4
        self._groups = superblock.groups()
        # In-memory i-node table image + dirty tracking.
        self._inodes: List[Inode] = []
        self._dirty_inodes: Set[int] = set()
        # Per-group free-i-node bookkeeping (count + lowest-free scan
        # hint), kept so bulk ingest stays O(1) amortized per i-node
        # while preserving exact first-fit lowest-free semantics.
        self._ino_free: List[int] = [0] * len(self._groups)
        self._ino_hint: List[int] = [0] * len(self._groups)
        # Dentry cache: (dir_ino, name) -> ino.
        self._dentries: Dict[Tuple[int, str], int] = {}
        # Metadata buffer cache (bitmap + indirect blocks only).
        self._meta: Dict[int, bytearray] = {}
        self._dirty_meta: Set[int] = set()
        self.allocator: Optional[BlockAllocator] = None
        #: Whether the on-disk superblock said CLEAN when this volume
        #: was mounted (mkfs volumes are trivially "clean": there is
        #: nothing stale to check).
        self.was_clean = True
        #: True while the on-disk superblock is known to say CLEAN; the
        #: first mutation then re-writes it DIRTY (lazy, so the classic
        #: mkfs-and-run workloads never pay an extra superblock write).
        self._sb_clean_on_disk = False
        self.unmounted = False

    # ------------------------------------------------------------------ setup
    @classmethod
    def mkfs(
        cls,
        device: BlockDevice,
        inode_count: int = 1024,
        cylinder_groups: int = 1,
    ) -> "Volume":
        """Format ``device`` and return the mounted volume."""
        sb = SuperBlock.compute(
            device.block_size, device.num_blocks, inode_count, cylinder_groups
        )
        sb.state = STATE_DIRTY
        volume = cls(device, sb)
        volume.allocator = BlockAllocator(
            sb.num_blocks,
            sb.data_start,
            groups=[(g.start, g.data_start, g.end) for g in volume._groups],
        )
        volume._inodes = [Inode(ino=i) for i in range(sb.inode_count)]
        # i-node 0 is reserved (0 marks "no entry" in directories).
        volume._inodes[0].type = FileType.REGULAR
        volume._inodes[0].nlink = 1
        root = volume._inodes[sb.root_ino]
        root.type = FileType.DIRECTORY
        root.nlink = 1
        now = volume._now()
        root.atime_us = root.mtime_us = root.ctime_us = now
        volume._dirty_inodes.update({0, sb.root_ino})
        volume._init_ino_tracking()
        device.write_block(0, sb.pack())
        volume.sync()
        volume._register()
        return volume

    @classmethod
    def mount(cls, device: BlockDevice) -> "Volume":
        """Mount an already-formatted device, loading metadata caches.

        Records whether the volume was cleanly unmounted
        (:attr:`was_clean`); the on-disk superblock is re-marked DIRTY
        lazily, on the first mutation."""
        sb = SuperBlock.unpack(device.read_block(0))
        was_clean = sb.state == STATE_CLEAN
        sb.state = STATE_DIRTY
        volume = cls(device, sb)
        volume.was_clean = was_clean
        volume._sb_clean_on_disk = was_clean
        groups = volume._groups
        bitmaps = [
            b"".join(
                device.read_block(g.bitmap_start + i)
                for i in range(g.bitmap_blocks)
            )
            for g in groups
        ]
        volume.allocator = BlockAllocator.from_group_bitmaps(
            sb.num_blocks,
            sb.data_start,
            [(g.start, g.data_start, g.end) for g in groups],
            bitmaps,
        )
        per_block = sb.block_size // INODE_SIZE
        inodes: List[Inode] = [None] * sb.inode_count  # type: ignore[list-item]
        for group in groups:
            for block_index in range(group.inode_blocks):
                raw = device.read_block(group.inode_start + block_index)
                for slot in range(per_block):
                    local = block_index * per_block + slot
                    if local >= group.inode_count:
                        break
                    ino = group.ino_base + local
                    if ino >= sb.inode_count:
                        break
                    inodes[ino] = Inode.unpack(
                        ino, raw[slot * INODE_SIZE : (slot + 1) * INODE_SIZE]
                    )
        volume._inodes = inodes
        volume._init_ino_tracking()
        volume._register()
        return volume

    def _register(self) -> None:
        """Let the world track this volume so :meth:`repro.world.World.save`
        can quiesce every mounted volume in one sweep."""
        register = getattr(self.device.world, "register_volume", None)
        if register is not None:
            register(self)

    def _init_ino_tracking(self) -> None:
        for gi, group in enumerate(self._groups):
            free = 0
            for local in range(group.inode_count):
                ino = group.ino_base + local
                if ino < self.sb.inode_count and not self._inodes[ino].allocated:
                    free += 1
            self._ino_free[gi] = free
            self._ino_hint[gi] = 0

    def _now(self) -> int:
        return int(self.device.world.clock.now_us)

    # ------------------------------------------------------------- inode access
    def iget(self, ino: int) -> Inode:
        """Fetch an i-node from the memory-resident table (no disk I/O)."""
        if not 0 <= ino < self.sb.inode_count:
            raise StorageError(f"i-node {ino} out of range")
        inode = self._inodes[ino]
        if not inode.allocated:
            raise FileNotFoundError_(f"i-node {ino} is free")
        return inode

    def mark_dirty(self, ino: int) -> None:
        self._dirty_inodes.add(ino)
        if self._sb_clean_on_disk:
            self._write_sb_state(STATE_DIRTY)

    def _write_sb_state(self, state: int) -> None:
        """Persist the superblock with ``state`` — the two edges of the
        clean/dirty lifecycle (mount-side lazy dirtying and the final
        write of a clean unmount)."""
        self.sb.state = state
        self.device.write_block(0, self.sb.pack())
        self._sb_clean_on_disk = state == STATE_CLEAN
        if state == STATE_DIRTY:
            self.unmounted = False

    def _alloc_inode(self, ftype: FileType, parent_ino: Optional[int] = None) -> Inode:
        """First-fit i-node allocation with FFS-style group placement:
        directories go to the group with the most free i-nodes (spread),
        files go to their parent directory's group (locality).  With one
        group this is exactly the classic lowest-free-i-node scan."""
        ngroups = len(self._groups)
        if ngroups == 1:
            order = [0]
        else:
            if ftype is FileType.DIRECTORY:
                preferred = max(
                    range(ngroups), key=lambda g: (self._ino_free[g], -g)
                )
            elif parent_ino is not None:
                preferred = self.sb.group_of_ino(parent_ino)
            else:
                preferred = 0
            order = [preferred] + [g for g in range(ngroups) if g != preferred]
        for gi in order:
            if self._ino_free[gi] == 0:
                continue
            group = self._groups[gi]
            for local in range(self._ino_hint[gi], group.inode_count):
                ino = group.ino_base + local
                if ino >= self.sb.inode_count:
                    break
                inode = self._inodes[ino]
                if inode.allocated:
                    continue
                inode.type = ftype
                inode.nlink = 0
                inode.size = 0
                inode.direct = [0] * NUM_DIRECT
                inode.indirect = 0
                inode.dbl_indirect = 0
                now = self._now()
                inode.atime_us = inode.mtime_us = inode.ctime_us = now
                self._ino_hint[gi] = local + 1
                self._ino_free[gi] -= 1
                self.mark_dirty(inode.ino)
                return inode
        raise NoSpaceError("no free i-nodes")

    # --------------------------------------------------------------- block map
    def _meta_read(self, block: int) -> bytearray:
        cached = self._meta.get(block)
        if cached is None:
            cached = bytearray(self.device.read_block(block))
            self._meta[block] = cached
        return cached

    def _meta_write(self, block: int, data: bytearray) -> None:
        self._meta[block] = data
        self._dirty_meta.add(block)
        if self._sb_clean_on_disk:
            self._write_sb_state(STATE_DIRTY)

    def _pointer(self, block: int, slot: int) -> int:
        raw = self._meta_read(block)
        return int.from_bytes(raw[slot * 4 : slot * 4 + 4], "little")

    def _set_pointer(self, block: int, slot: int, value: int) -> None:
        raw = self._meta_read(block)
        raw[slot * 4 : slot * 4 + 4] = value.to_bytes(4, "little")
        self._dirty_meta.add(block)
        if self._sb_clean_on_disk:
            self._write_sb_state(STATE_DIRTY)

    def bmap(self, inode: Inode, file_block: int, allocate: bool = False) -> int:
        """File block index -> device block index; 0 means a hole.

        With ``allocate=True`` missing blocks (and any needed indirect
        blocks) are allocated, preferring the i-node's own cylinder
        group."""
        assert self.allocator is not None
        ppb = self._pointers_per_block
        hint = self.sb.group_of_ino(inode.ino)
        if file_block < NUM_DIRECT:
            block = inode.direct[file_block]
            if block == 0 and allocate:
                block = self.allocator.allocate(hint)
                inode.direct[file_block] = block
                self.mark_dirty(inode.ino)
            return block
        file_block -= NUM_DIRECT
        if file_block < ppb:
            if inode.indirect == 0:
                if not allocate:
                    return 0
                inode.indirect = self.allocator.allocate(hint)
                self._meta_write(inode.indirect, bytearray(self.sb.block_size))
                self.mark_dirty(inode.ino)
            block = self._pointer(inode.indirect, file_block)
            if block == 0 and allocate:
                block = self.allocator.allocate(hint)
                self._set_pointer(inode.indirect, file_block, block)
            return block
        file_block -= ppb
        if file_block >= ppb * ppb:
            raise NoSpaceError("file exceeds maximum size for this geometry")
        outer, inner = divmod(file_block, ppb)
        if inode.dbl_indirect == 0:
            if not allocate:
                return 0
            inode.dbl_indirect = self.allocator.allocate(hint)
            self._meta_write(inode.dbl_indirect, bytearray(self.sb.block_size))
            self.mark_dirty(inode.ino)
        level1 = self._pointer(inode.dbl_indirect, outer)
        if level1 == 0:
            if not allocate:
                return 0
            level1 = self.allocator.allocate(hint)
            self._meta_write(level1, bytearray(self.sb.block_size))
            self._set_pointer(inode.dbl_indirect, outer, level1)
        block = self._pointer(level1, inner)
        if block == 0 and allocate:
            block = self.allocator.allocate(hint)
            self._set_pointer(level1, inner, block)
        return block

    def _mapped_blocks(self, inode: Inode) -> List[Tuple[int, int]]:
        """All (file_block, device_block) pairs mapped by an i-node."""
        assert self.allocator is not None
        ppb = self._pointers_per_block
        result: List[Tuple[int, int]] = []
        for i, block in enumerate(inode.direct):
            if block:
                result.append((i, block))
        if inode.indirect:
            for slot in range(ppb):
                block = self._pointer(inode.indirect, slot)
                if block:
                    result.append((NUM_DIRECT + slot, block))
        if inode.dbl_indirect:
            for outer in range(ppb):
                level1 = self._pointer(inode.dbl_indirect, outer)
                if not level1:
                    continue
                for inner in range(ppb):
                    block = self._pointer(level1, inner)
                    if block:
                        result.append((NUM_DIRECT + ppb + outer * ppb + inner, block))
        return result

    def _metadata_blocks(self, inode: Inode) -> List[int]:
        """Indirect-pointer blocks owned by an i-node."""
        blocks: List[int] = []
        if inode.indirect:
            blocks.append(inode.indirect)
        if inode.dbl_indirect:
            blocks.append(inode.dbl_indirect)
            for outer in range(self._pointers_per_block):
                level1 = self._pointer(inode.dbl_indirect, outer)
                if level1:
                    blocks.append(level1)
        return blocks

    # ----------------------------------------------------------------- file data
    def read_data(self, ino: int, offset: int, size: int) -> bytes:
        """Read file data; holes read as zeros without disk I/O."""
        inode = self.iget(ino)
        if offset >= inode.size:
            return b""
        size = min(size, inode.size - offset)
        out = bytearray()
        bs = self.sb.block_size
        position = offset
        remaining = size
        while remaining > 0:
            file_block, in_block = divmod(position, bs)
            take = min(bs - in_block, remaining)
            device_block = self.bmap(inode, file_block)
            if device_block == 0:
                out += bytes(take)
            else:
                raw = self.device.read_block(device_block)
                out += raw[in_block : in_block + take]
            position += take
            remaining -= take
        inode.atime_us = self._now()
        self.mark_dirty(ino)
        return bytes(out)

    def read_data_clustered(self, ino: int, offset: int, size: int) -> bytes:
        """Like :meth:`read_data`, but block-aligned and clustering:
        physically contiguous device blocks are fetched in single
        multi-block transfers.  Used by the disk layer's ranged page-in
        (read-ahead support, paper sec. 8)."""
        inode = self.iget(ino)
        if offset >= inode.size:
            return b""
        size = min(size, inode.size - offset)
        bs = self.sb.block_size
        if offset % bs != 0:
            return self.read_data(ino, offset, size)
        first_block = offset // bs
        block_count = (size + bs - 1) // bs
        # Map every file block, then coalesce physically contiguous runs.
        mapped = [
            self.bmap(inode, first_block + i) for i in range(block_count)
        ]
        out = bytearray()
        i = 0
        while i < block_count:
            device_block = mapped[i]
            if device_block == 0:
                out += bytes(bs)  # hole
                i += 1
                continue
            run = 1
            while (
                i + run < block_count
                and mapped[i + run] == device_block + run
            ):
                run += 1
            out += self.device.read_blocks(device_block, run)
            i += run
        inode.atime_us = self._now()
        self.mark_dirty(ino)
        return bytes(out[:size])

    def write_data(self, ino: int, offset: int, data: bytes) -> None:
        """Write file data, allocating blocks and growing size as needed."""
        inode = self.iget(ino)
        bs = self.sb.block_size
        position = offset
        consumed = 0
        remaining = len(data)
        while remaining > 0:
            file_block, in_block = divmod(position, bs)
            take = min(bs - in_block, remaining)
            device_block = self.bmap(inode, file_block, allocate=True)
            if take == bs:
                block_data = data[consumed : consumed + bs]
            else:
                # Read-modify-write for partial blocks.
                raw = bytearray(self.device.read_block(device_block))
                raw[in_block : in_block + take] = data[consumed : consumed + take]
                block_data = bytes(raw)
            self.device.write_block(device_block, block_data)
            position += take
            consumed += take
            remaining -= take
        if offset + len(data) > inode.size:
            inode.size = offset + len(data)
        now = self._now()
        inode.mtime_us = now
        inode.ctime_us = now
        self.mark_dirty(ino)

    def write_data_clustered(self, ino: int, offset: int, data: bytes) -> None:
        """Like :meth:`write_data`, but whole-block writes go to the
        device as single multi-block transfers per physically contiguous
        run — the write-side twin of :meth:`read_data_clustered`, used by
        the disk layer's vectored page-out.  Unaligned heads and partial
        tails fall back to :meth:`write_data`'s read-modify-write."""
        bs = self.sb.block_size
        if offset % bs != 0 or len(data) < bs:
            return self.write_data(ino, offset, data)
        inode = self.iget(ino)
        whole = (len(data) // bs) * bs
        first_block = offset // bs
        block_count = whole // bs
        mapped = [
            self.bmap(inode, first_block + i, allocate=True)
            for i in range(block_count)
        ]
        i = 0
        while i < block_count:
            run = 1
            while i + run < block_count and mapped[i + run] == mapped[i] + run:
                run += 1
            self.device.write_blocks(mapped[i], data[i * bs : (i + run) * bs])
            i += run
        if offset + whole > inode.size:
            inode.size = offset + whole
        now = self._now()
        inode.mtime_us = now
        inode.ctime_us = now
        self.mark_dirty(ino)
        tail = data[whole:]
        if tail:
            self.write_data(ino, offset + whole, tail)

    def truncate(self, ino: int, length: int) -> None:
        """Shrink or extend (sparsely) a file to ``length`` bytes."""
        assert self.allocator is not None
        inode = self.iget(ino)
        if length < inode.size:
            bs = self.sb.block_size
            keep_blocks = (length + bs - 1) // bs
            for file_block, device_block in self._mapped_blocks(inode):
                if file_block >= keep_blocks:
                    self.allocator.free(device_block)
                    self._clear_mapping(inode, file_block)
            # Zero the tail of a retained partial boundary block, so a
            # later extension reads zeros rather than resurrected bytes.
            within = length % bs
            if within:
                boundary = self.bmap(inode, length // bs)
                if boundary:
                    raw = bytearray(self.device.read_block(boundary))
                    raw[within:] = bytes(bs - within)
                    self.device.write_block(boundary, bytes(raw))
        inode.size = length
        now = self._now()
        inode.mtime_us = now
        inode.ctime_us = now
        self.mark_dirty(ino)

    def _clear_mapping(self, inode: Inode, file_block: int) -> None:
        ppb = self._pointers_per_block
        if file_block < NUM_DIRECT:
            inode.direct[file_block] = 0
            self.mark_dirty(inode.ino)
            return
        file_block -= NUM_DIRECT
        if file_block < ppb:
            self._set_pointer(inode.indirect, file_block, 0)
            return
        file_block -= ppb
        outer, inner = divmod(file_block, ppb)
        level1 = self._pointer(inode.dbl_indirect, outer)
        self._set_pointer(level1, inner, 0)

    def _set_mapping(self, inode: Inode, file_block: int, device_block: int) -> None:
        """Point ``file_block`` at ``device_block`` (fsck's duplicate-
        block repair; the indirect chain must already exist)."""
        ppb = self._pointers_per_block
        if file_block < NUM_DIRECT:
            inode.direct[file_block] = device_block
            self.mark_dirty(inode.ino)
            return
        file_block -= NUM_DIRECT
        if file_block < ppb:
            self._set_pointer(inode.indirect, file_block, device_block)
            return
        file_block -= ppb
        outer, inner = divmod(file_block, ppb)
        level1 = self._pointer(inode.dbl_indirect, outer)
        self._set_pointer(level1, inner, device_block)

    # ----------------------------------------------------------------- directories
    def _dir_entries(self, dir_ino: int) -> Dict[str, int]:
        inode = self.iget(dir_ino)
        if not inode.is_dir:
            raise NotADirectoryError_(f"i-node {dir_ino} is not a directory")
        return unpack_entries(self.read_data(dir_ino, 0, inode.size))

    def _write_dir(self, dir_ino: int, entries: Dict[str, int]) -> None:
        packed = pack_entries(entries)
        self.truncate(dir_ino, 0)
        if packed:
            self.write_data(dir_ino, 0, packed)

    def lookup(self, dir_ino: int, name: str) -> int:
        """Name -> i-node within a directory, through the dentry cache."""
        cached = self._dentries.get((dir_ino, name))
        if cached is not None:
            return cached
        entries = self._dir_entries(dir_ino)
        try:
            ino = entries[name]
        except KeyError:
            raise FileNotFoundError_(f"{name!r} not found in directory {dir_ino}")
        self._dentries[(dir_ino, name)] = ino
        return ino

    def readdir(self, dir_ino: int) -> Dict[str, int]:
        return self._dir_entries(dir_ino)

    def create(self, dir_ino: int, name: str, ftype: FileType) -> Inode:
        entries = self._dir_entries(dir_ino)
        if name in entries:
            raise FileExistsError_(f"{name!r} already exists in directory {dir_ino}")
        inode = self._alloc_inode(ftype, parent_ino=dir_ino)
        inode.nlink = 1
        entries[name] = inode.ino
        self._write_dir(dir_ino, entries)
        self._dentries[(dir_ino, name)] = inode.ino
        return inode

    def create_many(
        self, dir_ino: int, names: Sequence[str], ftype: FileType = FileType.REGULAR
    ) -> List[int]:
        """Bulk create: allocate one i-node per name and rewrite the
        directory ONCE — the ingest path for building large trees
        (benchmarks, migration tools) without the per-create directory
        rewrite going quadratic."""
        entries = self._dir_entries(dir_ino)
        inos: List[int] = []
        for name in names:
            if name in entries:
                raise FileExistsError_(
                    f"{name!r} already exists in directory {dir_ino}"
                )
            inode = self._alloc_inode(ftype, parent_ino=dir_ino)
            inode.nlink = 1
            entries[name] = inode.ino
            self._dentries[(dir_ino, name)] = inode.ino
            inos.append(inode.ino)
        self._write_dir(dir_ino, entries)
        return inos

    def link(self, dir_ino: int, name: str, target_ino: int) -> None:
        """Create an additional hard link to a regular file."""
        target = self.iget(target_ino)
        if target.is_dir:
            raise IsADirectoryError_("hard links to directories are not allowed")
        entries = self._dir_entries(dir_ino)
        if name in entries:
            raise FileExistsError_(f"{name!r} already exists")
        entries[name] = target_ino
        self._write_dir(dir_ino, entries)
        target.nlink += 1
        target.ctime_us = self._now()
        self.mark_dirty(target_ino)
        self._dentries[(dir_ino, name)] = target_ino

    def unlink(self, dir_ino: int, name: str) -> None:
        entries = self._dir_entries(dir_ino)
        try:
            ino = entries.pop(name)
        except KeyError:
            raise FileNotFoundError_(f"{name!r} not found in directory {dir_ino}")
        inode = self.iget(ino)
        if inode.is_dir and self._dir_entries(ino):
            raise DirectoryNotEmptyError(f"directory {name!r} is not empty")
        self._write_dir(dir_ino, entries)
        self._dentries.pop((dir_ino, name), None)
        inode.nlink -= 1
        inode.ctime_us = self._now()
        self.mark_dirty(ino)
        if inode.nlink == 0:
            self._free_inode(inode)

    def rename(
        self, src_dir: int, src_name: str, dst_dir: int, dst_name: str
    ) -> None:
        src_entries = self._dir_entries(src_dir)
        if src_name not in src_entries:
            raise FileNotFoundError_(f"{src_name!r} not found")
        dst_entries = (
            src_entries if dst_dir == src_dir else self._dir_entries(dst_dir)
        )
        if dst_name in dst_entries and dst_entries[dst_name] != src_entries[src_name]:
            raise FileExistsError_(f"{dst_name!r} already exists")
        ino = src_entries.pop(src_name)
        dst_entries[dst_name] = ino
        self._write_dir(src_dir, src_entries)
        if dst_dir != src_dir:
            self._write_dir(dst_dir, dst_entries)
        self._dentries.pop((src_dir, src_name), None)
        self._dentries[(dst_dir, dst_name)] = ino

    def _free_inode(self, inode: Inode) -> None:
        assert self.allocator is not None
        for _, device_block in self._mapped_blocks(inode):
            self.allocator.free(device_block)
        for meta_block in self._metadata_blocks(inode):
            self.allocator.free(meta_block)
            self._meta.pop(meta_block, None)
            self._dirty_meta.discard(meta_block)
        inode.type = FileType.FREE
        inode.size = 0
        inode.direct = [0] * NUM_DIRECT
        inode.indirect = 0
        inode.dbl_indirect = 0
        gi = self.sb.group_of_ino(inode.ino)
        self._ino_free[gi] += 1
        local = inode.ino - self._groups[gi].ino_base
        if local < self._ino_hint[gi]:
            self._ino_hint[gi] = local
        self.mark_dirty(inode.ino)
        stale = [key for key, value in self._dentries.items() if value == inode.ino]
        for key in stale:
            del self._dentries[key]

    # -------------------------------------------------------------------- sync
    def sync(self) -> int:
        """Flush dirty metadata to the device in the recovery-safe order
        — bitmaps first, then indirect blocks, then i-nodes — so a crash
        at any point leaves at worst allocated-but-unreferenced blocks
        (a leak fsck can free), never a referenced block the bitmap
        considers free.  Returns the number of blocks written."""
        assert self.allocator is not None
        written = 0
        # 1. Block bitmaps (per dirty cylinder group).
        if self.allocator.dirty:
            for gi in sorted(self.allocator.dirty_groups):
                group = self._groups[gi]
                for i, block in enumerate(
                    self.allocator.group_bitmap(gi, self.sb.block_size)
                ):
                    self.device.write_block(group.bitmap_start + i, block)
                    written += 1
            self.allocator.mark_clean()
        # 2. Indirect-pointer blocks (the metadata buffer cache).
        for meta_block in sorted(self._dirty_meta):
            self.device.write_block(meta_block, bytes(self._meta[meta_block]))
            written += 1
        self._dirty_meta.clear()
        # 3. The i-node table, one block at a time.
        per_block = self.sb.block_size // INODE_SIZE
        dirty_table_blocks = sorted(
            {self._inode_table_block(ino) for ino in self._dirty_inodes}
        )
        for device_block, group, block_index in dirty_table_blocks:
            raw = bytearray(self.sb.block_size)
            for slot in range(per_block):
                local = block_index * per_block + slot
                if local >= group.inode_count:
                    break
                ino = group.ino_base + local
                if ino >= self.sb.inode_count:
                    break
                raw[slot * INODE_SIZE : (slot + 1) * INODE_SIZE] = self._inodes[
                    ino
                ].pack()
            self.device.write_block(device_block, bytes(raw))
            written += 1
        self._dirty_inodes.clear()
        return written

    def _inode_table_block(self, ino: int):
        """(device block, group, block-within-group) holding ``ino``."""
        per_block = self.sb.block_size // INODE_SIZE
        group = self._groups[self.sb.group_of_ino(ino)]
        block_index = (ino - group.ino_base) // per_block
        return (group.inode_start + block_index, group, block_index)

    def unmount(self) -> int:
        """Cleanly detach: flush all dirty metadata (ordered), then —
        and only then — write the superblock CLEAN and push the backing
        store to its medium.  Idempotent.  Returns blocks written."""
        written = self.sync()
        if written or not self._sb_clean_on_disk:
            self._write_sb_state(STATE_CLEAN)
            written += 1
        self.device.flush()
        self.unmounted = True
        return written

    # -------------------------------------------------------------------- fsck
    def fsck(self, repair: bool = False) -> List[str]:
        """Cross-structure invariant check; returns a list of problems
        (empty = consistent).  Exercised heavily by property tests.

        Checks the volume the way a post-crash fsck would: a superblock
        that was DIRTY at mount time is itself reported, and with
        ``repair=True`` every repairable inconsistency is fixed —
        leaked blocks freed, lost allocations reclaimed, doubly-claimed
        blocks duplicated onto fresh blocks, dangling directory entries
        pruned, orphaned i-nodes released, and link counts corrected —
        after which the repairs are synced and the volume is considered
        clean."""
        assert self.allocator is not None
        problems: List[str] = []
        if not self.was_clean:
            problems.append(
                "superblock: volume was not cleanly unmounted (dirty)"
            )
        claimed: Dict[int, int] = {}
        duplicates: List[Tuple[int, int, Optional[int]]] = []
        lost_claims: List[int] = []
        for inode in self._inodes:
            if not inode.allocated:
                continue
            owned: List[Tuple[int, Optional[int]]] = [
                (b, fb) for fb, b in self._mapped_blocks(inode)
            ]
            owned += [(b, None) for b in self._metadata_blocks(inode)]
            for block, file_block in owned:
                if not self.sb.is_data_block(block):
                    problems.append(f"ino {inode.ino}: block {block} out of range")
                elif not self.allocator.is_allocated(block):
                    problems.append(
                        f"ino {inode.ino}: block {block} not marked allocated"
                    )
                    lost_claims.append(block)
                if block in claimed:
                    problems.append(
                        f"block {block} claimed by ino {claimed[block]} "
                        f"and ino {inode.ino}"
                    )
                    duplicates.append((block, inode.ino, file_block))
                else:
                    claimed[block] = inode.ino
            bs = self.sb.block_size
            max_block = (inode.size + bs - 1) // bs
            for file_block, _ in self._mapped_blocks(inode):
                if file_block >= max_block and inode.size > 0:
                    problems.append(
                        f"ino {inode.ino}: block beyond size "
                        f"(file_block {file_block}, size {inode.size})"
                    )
        # Leaked blocks: marked allocated but claimed by no i-node.
        leaked = [
            block
            for block in sorted(self.allocator._used)
            if block not in claimed
        ]
        for block in leaked:
            problems.append(f"block {block} allocated but unreferenced (leaked)")
        # Reference counts from the directory tree.
        refs: Dict[int, int] = {self.sb.root_ino: 1}
        dangling: List[Tuple[int, str]] = []
        stack = [self.sb.root_ino]
        visited = set()
        while stack:
            dir_ino = stack.pop()
            if dir_ino in visited:
                problems.append(f"directory cycle through ino {dir_ino}")
                continue
            visited.add(dir_ino)
            try:
                entries = self._dir_entries(dir_ino)
            except StorageError as exc:
                problems.append(f"ino {dir_ino}: unreadable directory: {exc}")
                continue
            for name, ino in entries.items():
                if not 0 <= ino < self.sb.inode_count or not self._inodes[ino].allocated:
                    problems.append(f"dangling entry {name!r} -> ino {ino}")
                    dangling.append((dir_ino, name))
                    continue
                refs[ino] = refs.get(ino, 0) + 1
                if self._inodes[ino].is_dir:
                    stack.append(ino)
        nlink_fixes: List[Tuple[Inode, int]] = []
        orphans: List[Inode] = []
        for inode in self._inodes:
            if inode.ino in (0,):
                continue
            if inode.allocated and refs.get(inode.ino, 0) != inode.nlink:
                problems.append(
                    f"ino {inode.ino}: nlink {inode.nlink} != "
                    f"{refs.get(inode.ino, 0)} references"
                )
                if refs.get(inode.ino, 0) == 0:
                    orphans.append(inode)
                else:
                    nlink_fixes.append((inode, refs[inode.ino]))
        if repair and problems:
            self._repair(
                lost_claims, duplicates, leaked, dangling, nlink_fixes, orphans
            )
        return problems

    def _repair(
        self,
        lost_claims: List[int],
        duplicates: List[Tuple[int, int, Optional[int]]],
        leaked: List[int],
        dangling: List[Tuple[int, str]],
        nlink_fixes: List[Tuple[Inode, int]],
        orphans: List[Inode],
    ) -> None:
        """Apply fsck repairs in dependency order, then persist them."""
        assert self.allocator is not None
        # 1. Reclaim allocations the bitmap lost (referenced blocks
        #    must be marked before anything else allocates over them).
        for block in lost_claims:
            self.allocator.claim(block)
        # 2. Resolve double claims: the second claimant gets a fresh
        #    block with a copy of the contested bytes (classic fsck
        #    block duplication).  Metadata (indirect) double claims are
        #    unresolvable without knowing which chain is stale; leave
        #    them reported.
        for block, ino, file_block in duplicates:
            if file_block is None:
                continue
            inode = self._inodes[ino]
            fresh = self.allocator.allocate(self.sb.group_of_ino(ino))
            self.device.write_block(fresh, self.device.read_block(block))
            self._set_mapping(inode, file_block, fresh)
        # 3. Release orphaned i-nodes (allocated, zero references):
        #    their blocks go back to the free pool.
        for inode in orphans:
            inode.nlink = 0
            self._free_inode_guarded(inode)
        # 4. Free leaked blocks — after orphan release so a block both
        #    leaked and orphan-owned is freed exactly once.
        for block in leaked:
            if self.allocator.is_allocated(block):
                self.allocator.free(block)
        # 5. Prune dangling directory entries.
        for dir_ino, name in dangling:
            entries = self._dir_entries(dir_ino)
            if name in entries:
                del entries[name]
                self._write_dir(dir_ino, entries)
            self._dentries.pop((dir_ino, name), None)
        # 6. Correct link counts.
        for inode, count in nlink_fixes:
            inode.nlink = count
            self.mark_dirty(inode.ino)
        self.sync()
        self.was_clean = True

    def _free_inode_guarded(self, inode: Inode) -> None:
        """:meth:`_free_inode`, but tolerant of blocks the bitmap never
        recorded — the post-crash states fsck repairs."""
        assert self.allocator is not None
        for _, device_block in self._mapped_blocks(inode):
            if self.allocator.is_allocated(device_block):
                self.allocator.free(device_block)
        for meta_block in self._metadata_blocks(inode):
            if self.allocator.is_allocated(meta_block):
                self.allocator.free(meta_block)
            self._meta.pop(meta_block, None)
            self._dirty_meta.discard(meta_block)
        inode.type = FileType.FREE
        inode.size = 0
        inode.direct = [0] * NUM_DIRECT
        inode.indirect = 0
        inode.dbl_indirect = 0
        gi = self.sb.group_of_ino(inode.ino)
        self._ino_free[gi] += 1
        local = inode.ino - self._groups[gi].ino_base
        if local < self._ino_hint[gi]:
            self._ino_hint[gi] = local
        self.mark_dirty(inode.ino)
        stale = [key for key, value in self._dentries.items() if value == inode.ino]
        for key in stale:
            del self._dentries[key]
