"""Block bitmap allocator.

Works on an in-memory image of the on-disk bitmap; the owning file
system flushes dirty bitmap blocks to the device on sync.  First-fit
with a rotating cursor, which keeps allocation deterministic while
avoiding pathological re-scanning.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.errors import NoSpaceError, StorageError


class BlockAllocator:
    """Allocation state for the data-block region of one volume."""

    def __init__(self, num_blocks: int, data_start: int) -> None:
        self.num_blocks = num_blocks
        self.data_start = data_start
        self._used: Set[int] = set()
        self._cursor = data_start
        self._dirty = False

    # --- persistence image -----------------------------------------------------
    def to_bitmap(self, block_size: int, bitmap_blocks: int) -> List[bytes]:
        """Serialize to bitmap blocks (bit set = block in use; metadata
        blocks below data_start are always marked used)."""
        bitmap = bytearray(bitmap_blocks * block_size)
        for index in range(min(self.data_start, self.num_blocks)):
            bitmap[index // 8] |= 1 << (index % 8)
        for index in self._used:
            bitmap[index // 8] |= 1 << (index % 8)
        return [
            bytes(bitmap[i * block_size : (i + 1) * block_size])
            for i in range(bitmap_blocks)
        ]

    @classmethod
    def from_bitmap(
        cls, blocks: Iterable[bytes], num_blocks: int, data_start: int
    ) -> "BlockAllocator":
        allocator = cls(num_blocks, data_start)
        bitmap = b"".join(blocks)
        for index in range(data_start, num_blocks):
            if bitmap[index // 8] & (1 << (index % 8)):
                allocator._used.add(index)
        return allocator

    # --- allocation ---------------------------------------------------------
    def allocate(self) -> int:
        """Allocate one data block."""
        if len(self._used) >= self.num_blocks - self.data_start:
            raise NoSpaceError("no free data blocks")
        index = self._cursor
        scanned = 0
        total = self.num_blocks - self.data_start
        while scanned <= total:
            if index >= self.num_blocks:
                index = self.data_start
            if index not in self._used:
                self._used.add(index)
                self._cursor = index + 1
                self._dirty = True
                return index
            index += 1
            scanned += 1
        raise NoSpaceError("no free data blocks")  # pragma: no cover

    def free(self, index: int) -> None:
        if index < self.data_start or index >= self.num_blocks:
            raise StorageError(f"free of non-data block {index}")
        if index not in self._used:
            raise StorageError(f"double free of block {index}")
        self._used.remove(index)
        self._dirty = True

    # --- introspection ----------------------------------------------------------
    def is_allocated(self, index: int) -> bool:
        return index in self._used

    @property
    def used_count(self) -> int:
        return len(self._used)

    @property
    def free_count(self) -> int:
        return self.num_blocks - self.data_start - len(self._used)

    @property
    def dirty(self) -> bool:
        return self._dirty

    def mark_clean(self) -> None:
        self._dirty = False
