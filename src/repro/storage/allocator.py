"""Block bitmap allocator.

Works on an in-memory image of the on-disk bitmaps; the owning file
system flushes dirty bitmap blocks to the device on sync.  First-fit
with a rotating cursor per cylinder group, which keeps allocation
deterministic while avoiding pathological re-scanning.

The allocator is group-aware (PR 9): each cylinder group contributes a
``(start, data_start, end)`` region with its own cursor and its own
dirty flag, and callers may pass a *group hint* so an i-node's blocks
land in the i-node's own group — the FFS locality policy.  With a
single legacy group (the default constructor) the behaviour is exactly
the classic single-cursor first-fit.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import NoSpaceError, StorageError

#: One allocation region: (region start, first data block, one past end).
GroupRange = Tuple[int, int, int]


class BlockAllocator:
    """Allocation state for the data-block regions of one volume."""

    def __init__(
        self,
        num_blocks: int,
        data_start: int,
        groups: Optional[Sequence[GroupRange]] = None,
    ) -> None:
        self.num_blocks = num_blocks
        self.data_start = data_start
        #: Cylinder-group regions; the legacy single group spans the
        #: whole device with its data region at ``data_start``.
        self._groups: List[GroupRange] = list(
            groups if groups is not None else [(0, data_start, num_blocks)]
        )
        self._used: Set[int] = set()
        self._cursors: List[int] = [g[1] for g in self._groups]
        self._group_used: List[int] = [0] * len(self._groups)
        self._dirty_groups: Set[int] = set()
        self._last_group = 0

    # --- geometry ---------------------------------------------------------
    @property
    def group_count(self) -> int:
        return len(self._groups)

    def _group_of(self, index: int) -> Optional[int]:
        """Group whose *data region* contains ``index`` (None if the
        block is metadata or out of range)."""
        for gi, (_start, data_lo, end) in enumerate(self._groups):
            if data_lo <= index < end:
                return gi
        return None

    def group_free(self, gi: int) -> int:
        _start, data_lo, end = self._groups[gi]
        return (end - data_lo) - self._group_used[gi]

    # --- persistence image -----------------------------------------------------
    def group_bitmap(self, gi: int, block_size: int) -> List[bytes]:
        """Serialize one group's bitmap blocks (bit set = block in use;
        bits are relative to the group's start; the group's own
        metadata blocks — everything before its data region — are
        always marked used)."""
        start, data_lo, end = self._groups[gi]
        bits_per_block = block_size * 8
        span = end - start
        nblocks = (span + bits_per_block - 1) // bits_per_block
        bitmap = bytearray(nblocks * block_size)
        for index in range(start, min(data_lo, end)):
            rel = index - start
            bitmap[rel // 8] |= 1 << (rel % 8)
        for index in self._used:
            if data_lo <= index < end:
                rel = index - start
                bitmap[rel // 8] |= 1 << (rel % 8)
        return [
            bytes(bitmap[i * block_size : (i + 1) * block_size])
            for i in range(nblocks)
        ]

    @classmethod
    def from_group_bitmaps(
        cls,
        num_blocks: int,
        data_start: int,
        groups: Sequence[GroupRange],
        bitmaps: Sequence[bytes],
    ) -> "BlockAllocator":
        """Rebuild allocation state from each group's concatenated
        bitmap bytes (``bitmaps[g]`` covers group ``g``)."""
        allocator = cls(num_blocks, data_start, groups)
        for gi, (start, data_lo, end) in enumerate(groups):
            raw = bitmaps[gi]
            for index in range(data_lo, end):
                rel = index - start
                if raw[rel // 8] & (1 << (rel % 8)):
                    allocator._used.add(index)
                    allocator._group_used[gi] += 1
        return allocator

    def to_bitmap(self, block_size: int, bitmap_blocks: int) -> List[bytes]:
        """Legacy single-group serialization (absolute bit-per-block
        image; metadata blocks below data_start marked used)."""
        blocks = self.group_bitmap(0, block_size)
        if len(blocks) != bitmap_blocks:
            raise StorageError(
                f"bitmap geometry mismatch: {len(blocks)} blocks vs "
                f"{bitmap_blocks} expected"
            )
        return blocks

    @classmethod
    def from_bitmap(
        cls, blocks: Iterable[bytes], num_blocks: int, data_start: int
    ) -> "BlockAllocator":
        """Legacy single-group deserialization."""
        return cls.from_group_bitmaps(
            num_blocks,
            data_start,
            [(0, data_start, num_blocks)],
            [b"".join(blocks)],
        )

    # --- allocation ---------------------------------------------------------
    @property
    def capacity(self) -> int:
        return sum(end - data_lo for _s, data_lo, end in self._groups)

    def allocate(self, group_hint: Optional[int] = None) -> int:
        """Allocate one data block, preferring the hinted group and
        falling over to the next group with free blocks."""
        if len(self._used) >= self.capacity:
            raise NoSpaceError("no free data blocks")
        ngroups = len(self._groups)
        first = group_hint if group_hint is not None else self._last_group
        for step in range(ngroups):
            gi = (first + step) % ngroups
            _start, data_lo, end = self._groups[gi]
            if self._group_used[gi] >= end - data_lo:
                continue
            index = self._cursors[gi]
            total = end - data_lo
            scanned = 0
            while scanned <= total:
                if index >= end or index < data_lo:
                    index = data_lo
                if index not in self._used:
                    self._used.add(index)
                    self._cursors[gi] = index + 1
                    self._group_used[gi] += 1
                    self._dirty_groups.add(gi)
                    self._last_group = gi
                    return index
                index += 1
                scanned += 1
        raise NoSpaceError("no free data blocks")  # pragma: no cover

    def free(self, index: int) -> None:
        gi = self._group_of(index)
        if gi is None:
            raise StorageError(f"free of non-data block {index}")
        if index not in self._used:
            raise StorageError(f"double free of block {index}")
        self._used.remove(index)
        self._group_used[gi] -= 1
        self._dirty_groups.add(gi)

    def claim(self, index: int) -> None:
        """Force-mark a data block used — the fsck repair path for
        blocks an i-node references but the bitmap lost."""
        gi = self._group_of(index)
        if gi is None:
            raise StorageError(f"claim of non-data block {index}")
        if index not in self._used:
            self._used.add(index)
            self._group_used[gi] += 1
            self._dirty_groups.add(gi)

    # --- introspection ----------------------------------------------------------
    def is_allocated(self, index: int) -> bool:
        return index in self._used

    @property
    def used_count(self) -> int:
        return len(self._used)

    @property
    def free_count(self) -> int:
        return self.capacity - len(self._used)

    @property
    def dirty(self) -> bool:
        return bool(self._dirty_groups)

    @property
    def dirty_groups(self) -> Set[int]:
        return self._dirty_groups

    def mark_clean(self) -> None:
        self._dirty_groups.clear()
