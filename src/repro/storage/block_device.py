"""Simulated block devices.

Replaces the paper's 424 MB 4400 RPM SCSI disk (DESIGN.md sec. 2).  Each
transfer charges seek + average rotational latency + media transfer to
the virtual clock, which is what makes the uncached rows of Table 2
disk-bound.  A zero-latency :class:`RamDevice` variant exists for
ablations and for tests that exercise logic rather than cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import DeviceError
from repro.ipc.invocation import operation
from repro.ipc.object import SpringObject
from repro.types import PAGE_SIZE
from repro.vm.page import ZERO_PAGE

if TYPE_CHECKING:
    from repro.sim.scheduler import ServiceQueue


class BlockDevice(SpringObject):
    """A fixed-geometry array of blocks with disk-like latency."""

    def __init__(
        self,
        domain,
        name: str,
        num_blocks: int,
        block_size: int = PAGE_SIZE,
        charge_latency: bool = True,
    ) -> None:
        super().__init__(domain)
        if num_blocks <= 0 or block_size <= 0:
            raise DeviceError("device geometry must be positive")
        self.name = name
        self.num_blocks = num_blocks
        self.block_size = block_size
        self.charge_latency = charge_latency
        #: Shared immutable zero block handed out for unallocated reads —
        #: the system-wide interned page when the geometry matches.
        self._zero_block = (
            ZERO_PAGE if block_size == PAGE_SIZE else bytes(block_size)
        )
        self._blocks: Dict[int, bytes] = {}
        self.reads = 0
        self.writes = 0
        #: Failure injection: block index -> error message.
        self._bad_blocks: Dict[int, str] = {}
        #: Transfer queue (concurrent mode): None — the default — means
        #: transfers never contend, which is the sequential calibration
        #: behaviour.  Install one with :meth:`install_queue` to model a
        #: disk arm that serves overlapping requests one at a time.
        self.queue: Optional["ServiceQueue"] = None

    def install_queue(self, servers: int = 1) -> "ServiceQueue":
        """Give the device a finite transfer capacity: each transfer
        reserves a slot for its own modelled duration, and time spent
        waiting behind other transfers is charged to
        ``disk_queue_wait`` (see :class:`repro.sim.scheduler.ServiceQueue`)."""
        from repro.sim.costs import DISK_QUEUE_WAIT
        from repro.sim.scheduler import ServiceQueue

        self.queue = ServiceQueue(
            self.world.clock, servers, DISK_QUEUE_WAIT
        )
        return self.queue

    def _enqueue(self, nbytes: int) -> None:
        """Concurrent mode: wait for the disk arm before the transfer
        itself is charged (no-op without an installed queue)."""
        if self.queue is not None:
            self.queue.admit(self.world.cost_model.disk_io_us(nbytes))

    # --- helpers ---------------------------------------------------------
    def _check(self, index: int) -> None:
        if not 0 <= index < self.num_blocks:
            raise DeviceError(
                f"block {index} out of range on {self.name!r} "
                f"(0..{self.num_blocks - 1})"
            )
        if index in self._bad_blocks:
            raise DeviceError(
                f"I/O error on {self.name!r} block {index}: "
                f"{self._bad_blocks[index]}"
            )

    def _charge(self) -> None:
        self._enqueue(self.block_size)
        if self.charge_latency:
            self.world.charge.disk_io(self.block_size)
        self.world.trace("disk", "transfer", device=self.name)

    # --- device interface --------------------------------------------------
    @operation
    def read_block(self, index: int) -> bytes:
        self._check(index)
        self._charge()
        self.reads += 1
        data = self._blocks.get(index)
        if data is None:
            return self._zero_block
        return data

    @operation
    def read_blocks(self, start: int, count: int) -> bytes:
        """Read ``count`` physically contiguous blocks in ONE transfer:
        one seek + rotational latency, then sequential media transfer.
        This is what makes clustering/read-ahead pay (paper sec. 8's
        open problem): per-byte cost collapses for sequential runs."""
        if count <= 0:
            raise DeviceError("read_blocks needs a positive count")
        for index in range(start, start + count):
            self._check(index)
        self._enqueue(count * self.block_size)
        if self.charge_latency:
            self.world.charge.disk_io(count * self.block_size)
        self.reads += 1
        out = bytearray()
        for index in range(start, start + count):
            data = self._blocks.get(index)
            out += data if data is not None else self._zero_block
        return bytes(out)

    @operation
    def write_blocks(self, start: int, data: bytes) -> None:
        """Write whole physically contiguous blocks in ONE transfer — the
        write-side counterpart of :meth:`read_blocks`: one seek +
        rotational latency, then sequential media transfer.  This is
        what makes batched page-out pay."""
        if len(data) == 0 or len(data) % self.block_size != 0:
            raise DeviceError(
                f"write_blocks needs a positive multiple of {self.block_size} "
                f"bytes, got {len(data)}"
            )
        count = len(data) // self.block_size
        for index in range(start, start + count):
            self._check(index)
        self._enqueue(len(data))
        if self.charge_latency:
            self.world.charge.disk_io(len(data))
        self.world.trace("disk", "transfer", device=self.name)
        self.writes += 1
        for i in range(count):
            self._blocks[start + i] = bytes(
                data[i * self.block_size : (i + 1) * self.block_size]
            )

    @operation
    def write_block(self, index: int, data: bytes) -> None:
        self._check(index)
        if len(data) > self.block_size:
            raise DeviceError(
                f"write of {len(data)} bytes exceeds block size {self.block_size}"
            )
        self._charge()
        self.writes += 1
        # Materialize exactly once at the storage boundary: ``data`` may
        # be a memoryview riding down from a page snapshot.
        size = len(data)
        if size < self.block_size:
            padded = bytearray(self.block_size)
            padded[:size] = data
            self._blocks[index] = bytes(padded)
        else:
            self._blocks[index] = bytes(data)

    @operation
    def capacity_bytes(self) -> int:
        return self.num_blocks * self.block_size

    # --- failure injection ------------------------------------------------------
    def inject_bad_block(self, index: int, reason: str = "media error") -> None:
        self._bad_blocks[index] = reason

    def clear_bad_blocks(self) -> None:
        self._bad_blocks.clear()

    # --- test/introspection helpers (not operations) -----------------------------
    def peek(self, index: int) -> bytes:
        """Raw block contents without latency or stats — test aid."""
        data = self._blocks.get(index)
        return data if data is not None else bytes(self.block_size)

    def allocated_blocks(self) -> int:
        return len(self._blocks)


class RamDevice(BlockDevice):
    """A block device with no mechanical latency (ablation aid)."""

    def __init__(
        self, domain, name: str, num_blocks: int, block_size: int = PAGE_SIZE
    ) -> None:
        super().__init__(domain, name, num_blocks, block_size, charge_latency=False)
