"""Simulated block devices.

Replaces the paper's 424 MB 4400 RPM SCSI disk (DESIGN.md sec. 2).  Each
transfer charges seek + average rotational latency + media transfer to
the virtual clock, which is what makes the uncached rows of Table 2
disk-bound.  A zero-latency :class:`RamDevice` variant exists for
ablations and for tests that exercise logic rather than cost.

Where the block bytes actually live is delegated to a pluggable
:class:`~repro.storage.blockstore.BlockStore`: the default
:class:`~repro.storage.blockstore.MemoryBlockStore` keeps the classic
in-memory dict (volatile, exactly as before), while an
:class:`~repro.storage.blockstore.ImageBlockStore` puts the same block
array in a sparse disk-image file so volumes survive process restarts.
Latency charging, ``ServiceQueue`` integration, and fault injection are
backend-independent — they live here, above the store.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.errors import DeviceError
from repro.ipc.invocation import operation
from repro.ipc.object import SpringObject
from repro.storage.blockstore import BlockStore, MemoryBlockStore
from repro.types import PAGE_SIZE
from repro.vm.page import ZERO_PAGE

if TYPE_CHECKING:
    from repro.sim.scheduler import ServiceQueue


class BlockDevice(SpringObject):
    """A fixed-geometry array of blocks with disk-like latency."""

    def __init__(
        self,
        domain,
        name: str,
        num_blocks: int = 0,
        block_size: int = PAGE_SIZE,
        charge_latency: bool = True,
        store: Optional[BlockStore] = None,
    ) -> None:
        super().__init__(domain)
        if store is not None:
            # The backend owns the geometry; the device adopts it.
            num_blocks = store.num_blocks
            block_size = store.block_size
        if num_blocks <= 0 or block_size <= 0:
            raise DeviceError("device geometry must be positive")
        if store is None:
            store = MemoryBlockStore(num_blocks, block_size)
        self.store = store
        self.name = name
        self.num_blocks = num_blocks
        self.block_size = block_size
        self.charge_latency = charge_latency
        #: Shared immutable zero block handed out for unallocated reads —
        #: the system-wide interned page when the geometry matches.
        self._zero_block = (
            ZERO_PAGE if block_size == PAGE_SIZE else bytes(block_size)
        )
        self.reads = 0
        self.writes = 0
        #: Failure injection: block index -> error message.
        self._bad_blocks: Dict[int, str] = {}
        #: Power-failure injection: None = off; an int = writes left
        #: before the simulated power cut (see
        #: :meth:`inject_power_failure_after`).
        self._power_countdown: Optional[int] = None
        self._power_failed = False
        #: Transfer queue (concurrent mode): None — the default — means
        #: transfers never contend, which is the sequential calibration
        #: behaviour.  Install one with :meth:`install_queue` to model a
        #: disk arm that serves overlapping requests one at a time.
        self.queue: Optional["ServiceQueue"] = None

    def install_queue(self, servers: int = 1) -> "ServiceQueue":
        """Give the device a finite transfer capacity: each transfer
        reserves a slot for its own modelled duration, and time spent
        waiting behind other transfers is charged to
        ``disk_queue_wait`` (see :class:`repro.sim.scheduler.ServiceQueue`)."""
        from repro.sim.costs import DISK_QUEUE_WAIT
        from repro.sim.scheduler import ServiceQueue

        self.queue = ServiceQueue(
            self.world.clock, servers, DISK_QUEUE_WAIT
        )
        return self.queue

    def _enqueue(self, nbytes: int) -> None:
        """Concurrent mode: wait for the disk arm before the transfer
        itself is charged (no-op without an installed queue)."""
        if self.queue is not None:
            self.queue.admit(self.world.cost_model.disk_io_us(nbytes))

    # --- helpers ---------------------------------------------------------
    def _check(self, index: int) -> None:
        if not 0 <= index < self.num_blocks:
            raise DeviceError(
                f"block {index} out of range on {self.name!r} "
                f"(0..{self.num_blocks - 1})"
            )
        if index in self._bad_blocks:
            raise DeviceError(
                f"I/O error on {self.name!r} block {index}: "
                f"{self._bad_blocks[index]}"
            )

    def _power_check(self) -> None:
        """Write-side power-cut gate: after the countdown runs out the
        write — and every later write — fails without reaching the
        store, leaving it exactly as a torn flush would."""
        if self._power_countdown is None and not self._power_failed:
            return
        if self._power_failed or self._power_countdown <= 0:
            self._power_failed = True
            raise DeviceError(f"simulated power failure on {self.name!r}")
        self._power_countdown -= 1

    def _charge(self) -> None:
        self._enqueue(self.block_size)
        if self.charge_latency:
            self.world.charge.disk_io(self.block_size)
        self.world.trace("disk", "transfer", device=self.name)

    # --- device interface --------------------------------------------------
    @operation
    def read_block(self, index: int) -> bytes:
        self._check(index)
        self._charge()
        self.reads += 1
        data = self.store.read(index)
        if data is None:
            return self._zero_block
        return data

    @operation
    def read_blocks(self, start: int, count: int) -> bytes:
        """Read ``count`` physically contiguous blocks in ONE transfer:
        one seek + rotational latency, then sequential media transfer.
        This is what makes clustering/read-ahead pay (paper sec. 8's
        open problem): per-byte cost collapses for sequential runs."""
        if count <= 0:
            raise DeviceError("read_blocks needs a positive count")
        for index in range(start, start + count):
            self._check(index)
        self._enqueue(count * self.block_size)
        if self.charge_latency:
            self.world.charge.disk_io(count * self.block_size)
        self.reads += 1
        return self.store.read_run(start, count)

    @operation
    def write_blocks(self, start: int, data: bytes) -> None:
        """Write whole physically contiguous blocks in ONE transfer — the
        write-side counterpart of :meth:`read_blocks`: one seek +
        rotational latency, then sequential media transfer.  This is
        what makes batched page-out pay."""
        if len(data) == 0 or len(data) % self.block_size != 0:
            raise DeviceError(
                f"write_blocks needs a positive multiple of {self.block_size} "
                f"bytes, got {len(data)}"
            )
        count = len(data) // self.block_size
        for index in range(start, start + count):
            self._check(index)
        self._power_check()
        self._enqueue(len(data))
        if self.charge_latency:
            self.world.charge.disk_io(len(data))
        self.world.trace("disk", "transfer", device=self.name)
        self.writes += 1
        self.store.write_run(start, data)

    @operation
    def write_block(self, index: int, data: bytes) -> None:
        self._check(index)
        if len(data) > self.block_size:
            raise DeviceError(
                f"write of {len(data)} bytes exceeds block size {self.block_size}"
            )
        self._power_check()
        self._charge()
        self.writes += 1
        size = len(data)
        if size < self.block_size:
            padded = bytearray(self.block_size)
            padded[:size] = data
            self.store.write(index, padded)
        else:
            self.store.write(index, data)

    @operation
    def capacity_bytes(self) -> int:
        return self.num_blocks * self.block_size

    # --- durability --------------------------------------------------------
    def flush(self) -> None:
        """Push the backend's buffered writes to its medium (no-op for
        the in-memory store).  Not an operation: durability is free in
        virtual time — the simulated cost was charged per transfer."""
        self.store.flush()

    def close(self) -> None:
        self.store.close()

    # --- failure injection ------------------------------------------------------
    def inject_bad_block(self, index: int, reason: str = "media error") -> None:
        self._bad_blocks[index] = reason

    def clear_bad_blocks(self) -> None:
        self._bad_blocks.clear()

    def inject_power_failure_after(self, writes: int) -> None:
        """Let ``writes`` more block writes succeed, then fail every
        subsequent write — a deterministic crash-mid-flush.  Reads keep
        working (the medium is intact; the machine is what died).
        Recovery is modelled by building a fresh device over the same
        store (same dict, or the reopened image file)."""
        self._power_countdown = writes
        self._power_failed = False

    def clear_power_failure(self) -> None:
        self._power_countdown = None
        self._power_failed = False

    # --- test/introspection helpers (not operations) -----------------------------
    def peek(self, index: int) -> bytes:
        """Raw block contents without latency or stats — test aid."""
        data = self.store.read(index)
        return data if data is not None else bytes(self.block_size)

    def allocated_blocks(self) -> int:
        """Blocks written through this store instance (for the memory
        backend: exactly the blocks that exist)."""
        return self.store.written_count()


class RamDevice(BlockDevice):
    """A block device with no mechanical latency (ablation aid)."""

    def __init__(
        self, domain, name: str, num_blocks: int, block_size: int = PAGE_SIZE
    ) -> None:
        super().__init__(domain, name, num_blocks, block_size, charge_latency=False)
