"""Reproduction of "Extensible File Systems in Spring"
(Khalidi & Nelson, SOSP 1993).

Top-level entry points:

>>> from repro import World
>>> from repro.storage import BlockDevice
>>> from repro.fs import create_sfs
>>> world = World()
>>> node = world.create_node("alpha")
>>> device = BlockDevice(node.nucleus, "sd0", 4096)
>>> sfs = create_sfs(node, device)

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from repro.errors import SpringError
from repro.sim.costs import CostModel
from repro.types import PAGE_SIZE, AccessRights
from repro.world import World

__version__ = "1.0.0"

__all__ = ["SpringError", "CostModel", "PAGE_SIZE", "AccessRights", "World"]
