"""Reproduction report generator.

``python -m repro.report`` regenerates every table and figure of the
paper in one run and prints them with the paper-reported values for
side-by-side comparison — the human-readable form of EXPERIMENTS.md.

Options::

    python -m repro.report              # everything
    python -m repro.report --tables     # Table 2 and Table 3 only
    python -m repro.report --figures    # Figures 1-10 only
    python -m repro.report --quick      # fewer iterations
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from repro.bench import figures
from repro.bench.table2 import run_table2
from repro.bench.table3 import run_table3

RULE = "=" * 72


def _heading(title: str) -> None:
    print(f"\n{RULE}\n{title}\n{RULE}")


def report_tables(iterations: int, runs: int) -> None:
    _heading("Table 2 — Spring SFS stacking overhead")
    table2 = run_table2(iterations=iterations, runs=runs)
    print(table2.render())
    print(
        "\npaper: open +39% (one domain) / +101% (two domains); cached\n"
        "read/write/stat at 100%; cached 4KB write 0.16 ms; uncached\n"
        "4KB write 13.7 ms (disk-bound)."
    )
    _heading("Table 3 — SunOS 4.1.3 baseline")
    table3 = run_table3(iterations=iterations, runs=runs)
    print(table3.render())
    print('\npaper: "Spring is from 2 to 7 times slower than SunOS."')


def build_layer_breakdown_demo() -> str:
    """Assemble a 3-deep stack (DFS serving binds on coherency on disk),
    drive file and mapped traffic through it, and render the per-layer
    channel-op telemetry the dispatch spine recorded.  Every fault on
    the mapping travels pager-to-pager down all three layers, so each
    one shows its own ``<layer>.<op>`` census.  Shared with the tests."""
    from repro.fs.dfs import DfsLayer
    from repro.fs.sfs import create_sfs
    from repro.fs.stack import describe_stack, render_layer_breakdown
    from repro.ipc.domain import Credentials
    from repro.storage.block_device import BlockDevice
    from repro.types import PAGE_SIZE, AccessRights
    from repro.world import World

    world = World()
    node = world.create_node("reportnode")
    device = BlockDevice(node.nucleus, "sd0", 4096)
    sfs = create_sfs(node, device)
    dfs = DfsLayer(
        node.create_domain("dfs", Credentials("dfs", privileged=True)),
        forward_local_binds=False,
    )
    dfs.stack_on(sfs.top)
    user = world.create_user_domain(node, "report-user")
    with user.activate():
        f = dfs.create_file("demo.dat")
        f.write(0, b"layered telemetry demo " * 400)
        f.sync()
        f.read(0, PAGE_SIZE)
        mapping = node.vmm.create_address_space("report-demo").map(
            f, AccessRights.READ_WRITE
        )
        mapping.read(0, 2 * PAGE_SIZE)
        mapping.write(0, b"spine")
        mapping.cache.sync()
    return describe_stack(dfs) + "\n\n" + render_layer_breakdown(dfs)


def report_layer_breakdown() -> None:
    _heading("Per-layer channel telemetry — 3-deep stack")
    print(build_layer_breakdown_demo())
    print(
        "\nEvery pager/cache op a layer dispatches is counted once at the\n"
        "spine under <layer>.<op>; .bytes totals accompany data-carrying\n"
        "ops.  The same breakdown is available for any stack via\n"
        "repro.fs.stack.render_layer_breakdown(top)."
    )


def build_fault_tolerance_demo() -> str:
    """Run a compact availability drill — a remote workload under a
    scripted crash + partition schedule, with the fault-tolerance knobs
    off and then on — and render the breakdown the telemetry recorded
    (``invoke.retries``, ``dfs.recoveries``, ``namecache.stale_serves``).
    Shared with the tests."""
    from repro.errors import SpringError
    from repro.fs.dfs import export_dfs, mount_remote
    from repro.fs.sfs import create_sfs
    from repro.ipc.retry import RetryPolicy
    from repro.naming.cache import NameCache
    from repro.sim.faults import FaultPlan
    from repro.storage.block_device import BlockDevice
    from repro.types import PAGE_SIZE
    from repro.world import World

    ops, files, think_us = 30, 4, 60.0

    def run_cell(knobs_on: bool) -> Dict[str, object]:
        world = World()
        server = world.create_node("server")
        client = world.create_node("client")
        device = BlockDevice(server.nucleus, "sd0", 8192)
        sfs = create_sfs(server, device)
        dfs = export_dfs(server, sfs.top)
        mount_remote(client, server, "dfs")
        su = world.create_user_domain(server, "su")
        cu = world.create_user_domain(client, "cu")
        with su.activate():
            proj = dfs.create_dir("proj")
            for i in range(files):
                proj.create_file(f"f{i}.dat").write(0, b"x" * PAGE_SIZE)
        cache = None
        if knobs_on:
            world.enable_retries(
                RetryPolicy(base_backoff_us=200.0, max_backoff_us=1_000.0)
            )
            cache = NameCache(world, serve_stale=True)
        base = world.clock.now_us
        plan = FaultPlan()
        plan.crash("server", base + 20_000, recover_at_us=base + 22_500)
        plan.partition(
            "server", "client", base + 60_000, heal_at_us=base + 61_500
        )
        world.install_fault_plan(plan)
        before = world.counters.snapshot()
        completed = 0
        with cu.activate():
            for i in range(ops):
                world.clock.advance(think_us, "client_think")
                if i == ops // 2:
                    client.fs_context.bind(f"scratch{i}", object())
                try:
                    path = f"dfs@server/proj/f{i % files}.dat"
                    if cache is not None:
                        handle = cache.resolve(client.fs_context, path)
                    else:
                        handle = client.fs_context.resolve(path)
                    handle.read(0, 64)
                    completed += 1
                except SpringError:
                    pass
        delta = world.counters.delta_since(before)
        return {
            "completed": completed,
            "retries": delta.get("invoke.retries", 0),
            "recoveries": delta.get("dfs.recoveries", 0),
            "stale_serves": delta.get("namecache.stale_serves", 0),
            "backoff_ms": round(world.clock.charged("retry_backoff") / 1000, 2),
        }

    off, on = run_cell(False), run_cell(True)
    lines = [
        f"workload: {ops} remote ops; schedule: 1 server crash + 1 "
        f"1.5ms partition",
        f"  knobs off: {off['completed']}/{ops} ops completed "
        f"({100 * off['completed'] // ops}% availability)",
        f"  knobs on:  {on['completed']}/{ops} ops completed "
        f"({100 * on['completed'] // ops}% availability)",
        f"             {on['retries']} retries "
        f"({on['backoff_ms']}ms backoff), "
        f"{on['recoveries']} DFS holder-state recoveries, "
        f"{on['stale_serves']} stale name serves",
    ]
    return "\n".join(lines)


def report_fault_tolerance() -> None:
    _heading("Fault tolerance — availability under the fault plane")
    print(build_fault_tolerance_demo())
    print(
        "\nKnobs (all off by default): world.enable_retries() for capped\n"
        "exponential backoff across fault windows, DFS epoch-bump crash\n"
        "recovery, NameCache(serve_stale=True) for degraded resolution.\n"
        "Full schedule + record: benchmarks/bench_fault_recovery.py."
    )


def build_load_saturation_demo(loads=None) -> str:
    """Run a compact offered-load sweep (the full 1 -> 2048 sweep lives
    in benchmarks/bench_load_sweep.py -> BENCH_load.json) and render the
    saturation curve — throughput plateaus at the shared disk's service
    rate while p99 latency keeps growing — for each configuration."""
    from repro.bench.loadgen import CONFIGS, render_sweep, sweep

    loads = loads or [1, 8, 32, 128]
    blocks = []
    for name in CONFIGS:
        blocks.append(render_sweep(name, sweep(name, loads)))
    return "\n\n".join(blocks)


def report_load_saturation() -> None:
    _heading("Concurrency — saturation under offered load")
    print(build_load_saturation_demo())
    print(
        "\nClients run as coroutines on the discrete-event scheduler\n"
        "(repro.sim.scheduler); the disk arm and the DFS server node are\n"
        "finite-capacity ServiceQueues, so overlapping requests pay\n"
        "queueing delay.  The knee is where throughput stops scaling with\n"
        "offered load; past it, added clients only deepen the queues.\n"
        "Full sweep + record: benchmarks/bench_load_sweep.py."
    )


FIGURES: Dict[str, Callable[[], Dict[str, object]]] = {
    "Figure 1 — Spring node structure": figures.fig01_node_structure,
    "Figure 2 — pager-cache channels": figures.fig02_pager_cache_channels,
    "Figure 3 — stack configuration (fs1..fs4)": figures.fig03_configuration,
    "Figure 4 — dual pager/cache-manager role": figures.fig04_dual_role,
    "Figure 5 — COMPFS case 1 (not coherent)": figures.fig05_compfs_case1,
    "Figure 6 — COMPFS case 2 (coherent)": figures.fig06_compfs_case2,
    "Figure 7 — DFS on SFS": figures.fig07_dfs,
    "Figure 8 — interface hierarchy": figures.fig08_interface_hierarchy,
    "Figure 9 — DFS on COMPFS on SFS": figures.fig09_full_stack,
    "Figure 10 — Spring SFS structure": figures.fig10_sfs_structure,
}


def report_figures() -> None:
    for title, builder in FIGURES.items():
        _heading(title)
        result = builder()
        for key, value in result.items():
            if isinstance(value, str) and "\n" in value:
                print(f"{key}:")
                for line in value.splitlines():
                    print(f"    {line}")
            else:
                print(f"{key}: {value}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.report", description=__doc__
    )
    parser.add_argument("--tables", action="store_true", help="tables only")
    parser.add_argument("--figures", action="store_true", help="figures only")
    parser.add_argument(
        "--quick", action="store_true", help="fewer measurement iterations"
    )
    args = parser.parse_args(argv)
    iterations, runs = (5, 1) if args.quick else (30, 3)
    everything = not (args.tables or args.figures)
    if args.tables or everything:
        report_tables(iterations, runs)
    if args.figures or everything:
        report_figures()
    if everything:
        report_layer_breakdown()
        report_fault_tolerance()
        report_load_saturation()
    print(f"\n{RULE}\nreport complete.\n{RULE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
