#!/usr/bin/env python3
"""Per-file interposition (paper sec. 5) — watchdog-style extensions.

Interposes on individual files and on a whole directory at
name-resolution time: an audit log, a read-only guard, and a transparent
rot13 transform, without any cooperation from the underlying file
system.

Run:  python examples/watchdog_interposition.py
"""

import codecs

from repro import World
from repro.errors import ReadOnlyError
from repro.fs import (
    AuditFile,
    ReadOnlyFile,
    TransformFile,
    create_sfs,
    interpose_on_name,
)
from repro.ipc.domain import Credentials
from repro.storage import BlockDevice


def rot13(data: bytes) -> bytes:
    return codecs.encode(data.decode("latin1"), "rot13").encode("latin1")


def main() -> None:
    world = World()
    node = world.create_node("alpha")
    device = BlockDevice(node.nucleus, "sd0", 8192)
    sfs = create_sfs(node, device)
    user = world.create_user_domain(node)
    watchdog_domain = node.create_domain(
        "watchdog", Credentials("watchdog", privileged=True)
    )

    with user.activate():
        secrets = sfs.top.create_file("secrets.txt")
        secrets.write(0, b"the original secret")
        notes = sfs.top.create_file("notes.txt")
        notes.write(0, b"some ordinary notes")

    # --- object interposition on single files ---------------------------------
    with user.activate():
        audited = AuditFile(watchdog_domain, sfs.top.resolve("notes.txt"))
        audited.read(0, 4)
        audited.write(5, b"AUDIT")
        print("audit log:", audited.audit_log)

        frozen = ReadOnlyFile(watchdog_domain, sfs.top.resolve("secrets.txt"))
        print("read through guard:", frozen.read(0, 19))
        try:
            frozen.write(0, b"overwrite attempt")
        except ReadOnlyError as exc:
            print("write denied:", exc)
        print("denials recorded:", frozen.intercepted("write"))

    # --- name-space interposition over a whole directory -----------------------
    # Bind the SFS under a context we control, then splice a watchdog
    # context in its place: "unbinds the context from the name space, and
    # binds in its place a naming context implemented by the interposer."
    with watchdog_domain.activate():
        node.fs_context.bind("home", sfs.top)
        watchdog = interpose_on_name(node.fs_context, "home", watchdog_domain)
        watchdog.watch(
            "secrets.txt",
            lambda f: TransformFile(watchdog_domain, f, encode=rot13, decode=rot13),
        )

    with user.activate():
        home = node.fs_context.resolve("home")
        via_watchdog = home.resolve("secrets.txt")
        # Writes are rot13'd on the way down; reads undo it.
        via_watchdog.write(0, b"hello interposition")
        print("through watchdog:", via_watchdog.read(0, 19))
        print("raw bytes on SFS:", sfs.top.resolve("secrets.txt").read(0, 19))
        # Unwatched names pass straight through.
        print("unwatched file:  ", home.resolve("notes.txt").read(0, 4))
        print("intercepted names:", watchdog.intercepted)


if __name__ == "__main__":
    main()
