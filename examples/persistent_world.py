#!/usr/bin/env python3
"""Persistent worlds: a volume that survives the process.

First run  — formats a disk *image file*, assembles a three-layer stack
(NULLFS on the coherency layer on the disk layer), writes a small tree
through the top, and saves the world (clean unmount: ordered metadata
flush, then the superblock goes CLEAN).

Second run — the image exists, so the same stack is rebuilt over it with
``format_device=False``: the tree written by the previous process is
still there, fsck is clean, and the superblock confirms the clean
unmount.

Run:  python examples/persistent_world.py [image-path]
      (twice; delete the image to start over)
"""

import os
import sys

from repro import World
from repro.fs import NullFs, create_sfs
from repro.ipc.domain import Credentials

TREE = {
    "README": b"this tree outlives the process that wrote it\n",
    "data/large.bin": bytes(range(256)) * 64,       # 16 KB, multi-block
    "data/small.txt": b"spring volumes are files now\n",
}


def build_stack(world, node, device, format_device):
    """NULLFS -> coherency layer -> disk layer over ``device``."""
    sfs = create_sfs(
        node, device, placement="two_domains", format_device=format_device
    )
    null = NullFs(node.create_domain("null", Credentials("null", True)))
    null.stack_on(sfs.top)
    return sfs, null


def first_run(path: str) -> None:
    world = World()
    node = world.create_node("alpha")
    device = world.create_image(node.nucleus, path, num_blocks=4096)
    sfs, top = build_stack(world, node, device, format_device=True)
    user = world.create_user_domain(node)
    with user.activate():
        for name, data in TREE.items():
            dirname, _, base = name.rpartition("/")
            ctx = top
            if dirname:
                try:
                    ctx = top.resolve(dirname)
                except Exception:
                    ctx = top.create_dir(dirname)
            f = ctx.create_file(base)
            f.write(0, data)
    blocks = world.save()
    device.close()
    print(f"wrote {len(TREE)} files through a 3-layer stack")
    print(f"saved world to {path} ({blocks} metadata blocks in final flush)")
    print("run me again to remount it")


def second_run(path: str) -> None:
    world = World()
    node = world.create_node("alpha")
    device = world.open_image(node.nucleus, path)
    sfs, top = build_stack(world, node, device, format_device=False)
    volume = sfs.volume
    print(f"remounted {path}")
    print(f"cleanly unmounted last time: {volume.was_clean}")
    problems = volume.fsck()
    print(f"fsck: {problems if problems else 'clean'}")
    user = world.create_user_domain(node)
    ok = 0
    with user.activate():
        for name, data in TREE.items():
            f = top.resolve(name)
            assert f.read(0, len(data)) == data, f"{name} corrupted!"
            ok += 1
    print(f"verified {ok}/{len(TREE)} files byte-for-byte through the stack")
    world.save()
    device.close()


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "persistent_world.img"
    if os.path.exists(path):
        second_run(path)
    else:
        first_run(path)


if __name__ == "__main__":
    main()
