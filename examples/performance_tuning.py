#!/usr/bin/env python3
"""Performance tuning: read-ahead, memory pressure, and protocol choice.

Exercises the tunables the paper's sec. 8 sketches as future work, all
implemented here:

* read-ahead/clustering through ranged page-ins (min/max sizes);
* a VMM physical-memory bound with clean-first reclamation;
* the pluggable coherency protocol (per-block vs whole-file).

Run:  python examples/performance_tuning.py
"""

from repro import AccessRights, World
from repro.fs import create_sfs
from repro.storage import BlockDevice
from repro.types import PAGE_SIZE

FILE_PAGES = 64


def build(readahead: int = 0):
    world = World()
    node = world.create_node("alpha")
    device = BlockDevice(node.nucleus, "sd0", 16384)
    stack = create_sfs(node, device)
    stack.coherency_layer.readahead_pages = readahead
    user = world.create_user_domain(node)
    with user.activate():
        f = stack.top.create_file("scan.dat")
        f.write(0, b"d" * (FILE_PAGES * PAGE_SIZE))
        f.sync()
    # Drop the warm cache so the scan below is cold.
    state = next(iter(stack.coherency_layer._states.values()))
    state.store.clear()
    state.last_fault_index = None
    return world, node, stack, user


def main() -> None:
    # ---- read-ahead sweep -----------------------------------------------------
    print(f"cold sequential scan of a {FILE_PAGES}-page file:")
    for window in (0, 4, 16):
        world, node, stack, user = build(readahead=window)
        device = stack.disk_layer.device
        reads_before = device.reads
        with user.activate():
            f = stack.top.resolve("scan.dat")
            start = world.clock.now_us
            for page in range(FILE_PAGES):
                f.read(page * PAGE_SIZE, PAGE_SIZE)
            elapsed_ms = (world.clock.now_us - start) / 1000
        label = f"window {window}" if window else "no read-ahead"
        print(f"  {label:14} {elapsed_ms:8.1f} ms, "
              f"{device.reads - reads_before} disk transfers")

    # ---- memory pressure -------------------------------------------------------
    world, node, stack, user = build()
    node.vmm.capacity_pages = 8
    with user.activate():
        f = stack.top.resolve("scan.dat")
        mapping = node.vmm.create_address_space("app").map(
            f, AccessRights.READ_WRITE
        )
        for page in range(FILE_PAGES):
            mapping.write(page * PAGE_SIZE, bytes([page % 250 + 1]) * 64)
        ok = all(
            mapping.read(page * PAGE_SIZE, 1) == bytes([page % 250 + 1])
            for page in range(FILE_PAGES)
        )
    print(f"\nmemory pressure: {FILE_PAGES} dirty pages through an "
          f"8-page VMM: data intact = {ok}, "
          f"evictions = {node.vmm.evictions}, "
          f"resident = {node.vmm.resident_pages()} pages")

    # ---- protocol choice --------------------------------------------------------
    from repro.fs.coherency import CoherencyLayer
    from repro.fs.disk_layer import DiskLayer
    from repro.ipc.domain import Credentials

    print("\nfalse sharing (two mappings writing different blocks):")
    for protocol in ("per_block", "whole_file"):
        world = World()
        node = world.create_node("n")
        disk = DiskLayer(
            node.create_domain("disk"), BlockDevice(node.nucleus, "d", 8192),
            format_device=True,
        )
        coherency = CoherencyLayer(
            node.create_domain("coh", Credentials("c", True)),
            protocol=protocol,
        )
        coherency.stack_on(disk)
        user = world.create_user_domain(node)
        with user.activate():
            f = coherency.create_file("hot.bin")
            f.write(0, bytes(8 * PAGE_SIZE))
            m1 = node.vmm.create_address_space("a").map(
                coherency.resolve("hot.bin"), AccessRights.READ_WRITE
            )
            start = world.clock.now_us
            for i in range(16):
                m1.write(0, bytes([i + 1]) * 32)
                f.write(4 * PAGE_SIZE, bytes([i + 101]) * 32)
            elapsed_ms = (world.clock.now_us - start) / 1000
        flushes = world.counters.get("vmm.flush_back")
        print(f"  {protocol:11} {elapsed_ms:7.2f} ms, {flushes} flush-backs")


if __name__ == "__main__":
    main()
