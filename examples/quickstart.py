#!/usr/bin/env python3
"""Quickstart: boot a Spring node, build the stacked SFS, and use it
through both the file interface and the POSIX facade.

Run:  python examples/quickstart.py
"""

from repro import AccessRights, World
from repro.fs import create_sfs, describe_stack
from repro.storage import BlockDevice
from repro.unix import O_CREAT, O_RDWR, Posix


def main() -> None:
    # One simulated machine with a nucleus, VMM, and name service.
    world = World()
    node = world.create_node("alpha")

    # A 32 MB simulated disk, formatted with the UFS-like volume and
    # exported as the two-layer Spring SFS (Figure 10): a coherency
    # layer stacked on a disk layer, each in its own domain.
    device = BlockDevice(node.nucleus, "sd0", num_blocks=8192)
    sfs = create_sfs(node, device, placement="two_domains")
    print("The stack that was just assembled:")
    print(describe_stack(sfs.top))
    print()

    user = world.create_user_domain(node)

    # --- raw Spring file objects --------------------------------------------
    with user.activate():
        f = sfs.top.create_file("notes.txt")
        f.write(0, b"files are memory objects; read/write is one way in\n")

        # The same file, memory mapped — the other way in.  Both go
        # through the same cache, so they are coherent by construction.
        aspace = node.vmm.create_address_space("quickstart")
        mapping = aspace.map(f, AccessRights.READ_WRITE)
        mapping.write(0, b"FILES")
        print("read() sees the mapped write:", f.read(0, 5))

        f.sync()
        sfs.top.sync_fs()

    # --- POSIX facade ------------------------------------------------------------
    posix = Posix(sfs.top, user)
    fd = posix.open("report.txt", O_RDWR | O_CREAT)
    posix.write(fd, b"hello from the POSIX facade\n")
    posix.lseek(fd, 0)
    print("POSIX read:", posix.read(fd, 27))
    print("fstat size:", posix.fstat(fd).size)
    posix.close(fd)
    print("directory:", posix.listdir())

    print(f"\nvirtual time elapsed: {world.clock.now_us / 1000:.2f} ms")
    print(f"disk time: {world.clock.charged('disk') / 1000:.2f} ms")
    print(f"cross-domain calls: {world.counters.get('invoke.cross_domain')}")


if __name__ == "__main__":
    main()
