#!/usr/bin/env python3
"""COMPFS: stack a compression layer over SFS (paper sec. 4.2.1).

Demonstrates both of the paper's design points:

* case 1 (Figure 5) — no C3-P3 channel: a direct write to the
  underlying file leaves COMPFS's plaintext cache stale;
* case 2 (Figure 6) — COMPFS acts as a cache manager for the
  underlying file: all views stay coherent.

Run:  python examples/compression_stack.py
"""

from repro import World
from repro.bench.workloads import compressible_bytes
from repro.fs import CompFs, create_sfs, describe_stack
from repro.fs.compfs import pack_compressed
from repro.ipc.domain import Credentials
from repro.storage import BlockDevice


def build(world: World, node, coherent: bool, tag: str):
    device = BlockDevice(node.nucleus, f"sd-{tag}", 8192)
    sfs = create_sfs(node, device, name=f"sfs-{tag}")
    domain = node.create_domain(f"compfs-{tag}", Credentials("compfs", True))
    compfs = CompFs(domain, coherent=coherent)
    compfs.stack_on(sfs.top)
    node.fs_context.bind(f"compfs-{tag}", compfs)
    return sfs, compfs


def main() -> None:
    world = World()
    node = world.create_node("alpha")
    user = world.create_user_domain(node)

    # ----- space savings (why COMPFS exists) ---------------------------------
    sfs, compfs = build(world, node, coherent=True, tag="demo")
    print(describe_stack(compfs))
    text = compressible_bytes(256 * 1024, seed=7)
    with user.activate():
        f = compfs.create_file("corpus.txt")
        f.write(0, text)
        f.sync()
        report = compfs.space_report(f)
    saved = 1 - report["stored_bytes"] / report["plaintext_bytes"]
    print(
        f"stored {report['plaintext_bytes']} plaintext bytes in "
        f"{report['stored_bytes']} on disk ({saved:.0%} saved)"
    )

    # Anyone can open the underlying SFS file and see compressed bytes —
    # "A client opening file_SFS can access this file as usual, reading
    # and writing its compressed data."
    with user.activate():
        raw = sfs.top.resolve("corpus.txt")
        print("underlying file magic:", raw.read(0, 4))

    # ----- case 1 vs case 2 coherence ---------------------------------------------
    for coherent in (False, True):
        tag = "case2" if coherent else "case1"
        _, layer = build(world, node, coherent=coherent, tag=tag)
        with user.activate():
            f = layer.create_file("shared.txt")
            f.write(0, b"first version of the data")
            f.sync()
            f.read(0, 8)  # prime the plaintext cache

            # A direct client rewrites the underlying compressed image.
            new_plain = b"second version, written directly to file_SFS"
            under = layer.under.resolve("shared.txt")
            image = pack_compressed(new_plain)
            under.set_length(len(image))
            under.write(0, image)

            seen = layer.resolve("shared.txt").read(0, len(new_plain))
        status = "coherent" if seen == new_plain else "STALE"
        print(f"{tag} ({'with' if coherent else 'no'} C3-P3 channel): "
              f"COMPFS view is {status}")


if __name__ == "__main__":
    main()
