#!/usr/bin/env python3
"""DFS + CFS: coherent file sharing across three machines (Figure 7 and
paper sec. 6.2).

A server exports its SFS through DFS; two client machines mount it.
Every view — the server's local mapping, both clients' mappings, and the
plain read/write interface — stays coherent, because coherency actions
fan out through the pager-cache channels.  CFS on the clients then cuts
the attribute-fetch network traffic.

Run:  python examples/distributed_sharing.py
"""

from repro import AccessRights, World
from repro.fs import create_sfs, export_dfs, mount_remote, start_cfs
from repro.storage import BlockDevice


def main() -> None:
    world = World()
    server = world.create_node("server")
    client1 = world.create_node("client1")
    client2 = world.create_node("client2")

    device = BlockDevice(server.nucleus, "sd0", 8192)
    sfs = create_sfs(server, device)
    dfs = export_dfs(server, sfs.top)
    mount_remote(client1, server, "dfs")
    mount_remote(client2, server, "dfs")

    server_user = world.create_user_domain(server, "server-user")
    user1 = world.create_user_domain(client1, "user1")
    user2 = world.create_user_domain(client2, "user2")

    # The server creates a shared file.
    with server_user.activate():
        f = dfs.create_file("design.doc")
        f.write(0, b"v1: the server wrote this. " * 100)

    # Both clients map it into their address spaces.
    with user1.activate():
        rf1 = client1.fs_context.resolve("dfs@server").resolve("design.doc")
        m1 = client1.vmm.create_address_space("u1").map(
            rf1, AccessRights.READ_WRITE
        )
        print("client1 reads:", m1.read(0, 27))
    with user2.activate():
        rf2 = client2.fs_context.resolve("dfs@server").resolve("design.doc")
        m2 = client2.vmm.create_address_space("u2").map(
            rf2, AccessRights.READ_WRITE
        )
        print("client2 reads:", m2.read(0, 27))

    # client1 writes through its mapping; client2 and the server observe
    # it — the per-block MRSW protocol recalls the dirty block.
    with user1.activate():
        m1.write(0, b"v2: client1 changed this!  ")
    with user2.activate():
        print("client2 now sees:", m2.read(0, 27))
    with server_user.activate():
        print("server now sees: ", dfs.resolve("design.doc").read(0, 27))
    print(f"network messages so far: {world.network.messages}")

    # --- CFS: attribute caching on the client ------------------------------------
    cfs = start_cfs(client1)
    with user1.activate():
        local = cfs.interpose(
            client1.fs_context.resolve("dfs@server").resolve("design.doc")
        )
        before = world.network.messages
        for _ in range(100):
            local.get_attributes()
        cfs_msgs = world.network.messages - before

        plain = client1.fs_context.resolve("dfs@server").resolve("design.doc")
        before = world.network.messages
        for _ in range(100):
            plain.get_attributes()
        plain_msgs = world.network.messages - before

    print(f"100 stats without CFS: {plain_msgs} network messages")
    print(f"100 stats with CFS:    {cfs_msgs} network messages")
    print(f"virtual time: {world.clock.now_us / 1000:.1f} ms "
          f"({world.clock.charged('network') / 1000:.1f} ms on the network)")


if __name__ == "__main__":
    main()
