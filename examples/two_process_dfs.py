#!/usr/bin/env python3
"""A Spring stack split across two OS processes over real TCP.

The server process (``python -m repro.serve --stack dfs``) hosts a
two-node simulated world — a storage node exporting its SFS through DFS
and a gateway node mounting it — and serves the gateway's POSIX facade
over the length-prefixed socket transport.  This process is a pure
client: it connects with :class:`~repro.ipc.transport.SocketTransport`,
drives the file service through stubs, batches a round of stats into a
single compound frame, and shuts the server down.

Every line printed is deterministic (file bytes, virtual-time stamps,
simulated message counts, frame counts), so CI asserts the transcript's
final line verbatim.

Run:  PYTHONPATH=src python examples/two_process_dfs.py
"""

import os
import subprocess
import sys

from repro.ipc import CompoundInvocation
from repro.ipc.transport import SocketTransport
from repro.serve import FileService

TREE = {
    "notes/README": b"this file crossed a real socket\n",
    "notes/design.doc": b"v1: written over TCP. " * 40,
    "blob.bin": bytes(range(256)) * 32,  # 8 KB, multi-frame payload
}


def start_server():
    """Launch the serving process; returns (process, host, port)."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--stack", "dfs", "--port", "0"],
        stdout=subprocess.PIPE,
        env=env,
        text=True,
    )
    line = proc.stdout.readline().strip()
    fields = dict(
        part.split("=", 1) for part in line.split() if "=" in part
    )
    if "port" not in fields:
        proc.kill()
        raise RuntimeError(f"server did not come up: {line!r}")
    print(f"server process ready: stack={fields['stack']}")
    return proc, fields["host"], int(fields["port"])


def main() -> None:
    proc, host, port = start_server()
    client = SocketTransport(host, port, src="client", dst="gateway")
    fs = client.bind("fs", idempotent=FileService.IDEMPOTENT_OPS)
    control = client.bind("control")
    try:
        print(f"control.ping() -> {control.ping()!r}")

        # Build a small tree through the wire.
        fs.mkdir("notes")
        total = 0
        for path, data in sorted(TREE.items()):
            written = fs.write_file(path, data)
            total += written
            print(f"wrote {path}: {written} bytes")

        # Read back and verify byte-for-byte.
        verified = 0
        for path, data in sorted(TREE.items()):
            back = fs.read_file(path)
            assert back == data, f"{path} corrupted over the wire!"
            verified += 1
        print(f"verified {verified}/{len(TREE)} files byte-for-byte over TCP")
        print(f"listdir('') -> {fs.listdir('')}")
        print(f"listdir('notes') -> {fs.listdir('notes')}")

        # One compound frame carrying a whole round of stats.
        frames_before = client.messages
        batch = CompoundInvocation()
        for path in sorted(TREE):
            batch.add(fs.stat, path)
        sizes = [attrs.size for attrs in batch.commit().values()]
        batched_frames = client.messages - frames_before
        print(
            f"compound stat of {len(sizes)} files used "
            f"{batched_frames} frame(s); sizes={sizes}"
        )

        stats = control.stats()
        print(
            "server-side simulated stack: "
            f"{stats['sim_messages']} messages between gateway and storage"
        )
        print(f"control.shutdown() -> {control.shutdown()!r}")
    finally:
        client.close()
        code = proc.wait(timeout=10)
    print(
        f"two_process_dfs OK: files={len(TREE)} bytes={total} "
        f"compound_frames={batched_frames} sim_messages={stats['sim_messages']} "
        f"server_exit={code}"
    )


if __name__ == "__main__":
    main()
