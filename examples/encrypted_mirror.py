#!/usr/bin/env python3
"""Composing layers: an encrypted, mirrored home directory.

Builds the stack

    cryptfs
      mirrorfs
        sfs (disk sd0)     sfs (disk sd1)

using the creator/configuration machinery of paper sec. 4.4-4.5, then
exercises it: data is encrypted before it ever reaches either replica,
both replicas hold identical ciphertext, and when one disk develops bad
blocks the mirror fails over transparently.

Run:  python examples/encrypted_mirror.py
"""

from repro import World
from repro.fs import (
    LayerSpec,
    build_stack,
    create_sfs,
    describe_stack,
    register_standard_creators,
)
from repro.storage import BlockDevice


def main() -> None:
    world = World()
    node = world.create_node("alpha")
    register_standard_creators(node)

    device_a = BlockDevice(node.nucleus, "sd0", 8192)
    device_b = BlockDevice(node.nucleus, "sd1", 8192)
    # cache=False keeps the replicas' coherency layers out of the data
    # path, so the failure-injection step below really exercises the
    # disks (with caching on, the demo read would be a cache hit).
    sfs_a = create_sfs(node, device_a, name="sfs-a", cache=False)
    sfs_b = create_sfs(node, device_b, name="sfs-b", cache=False)

    # mirrorfs needs both replicas; build_stack wires the first, we add
    # the second before layering cryptfs on top.
    mirror, = build_stack(node, sfs_a.top, [LayerSpec("mirrorfs")])
    mirror.stack_on(sfs_b.top)
    cryptfs, = build_stack(
        node, mirror, [LayerSpec("cryptfs", {"key": b"home-dir-key"})],
        export_as="home",
    )
    print(describe_stack(cryptfs))

    user = world.create_user_domain(node)
    secret = b"my diary: the simulation is watching me type. " * 40
    with user.activate():
        f = cryptfs.create_file("diary.txt")
        f.write(0, secret)
        f.sync()
        cryptfs.sync_fs()

        # Plaintext comes back through the stack...
        print("roundtrip ok:", cryptfs.resolve("diary.txt").read(0, 9) == secret[:9])

        # ...but both replicas hold ciphertext, and identical ciphertext.
        raw_a = sfs_a.top.resolve("diary.txt").read(0, len(secret))
        raw_b = sfs_b.top.resolve("diary.txt").read(0, len(secret))
        print("replica A is ciphertext:", raw_a[:9] != secret[:9])
        print("replicas identical:", raw_a == raw_b)
        print("mirror scrub:", mirror.scrub("diary.txt") or "clean")

    # --- failure injection: primary disk goes bad ---------------------------------
    for block in range(device_a.num_blocks):
        device_a.inject_bad_block(block, "head crash")
    with user.activate():
        # Read through the mirror itself (the replicas are uncached, so
        # this genuinely drives the failed disk and falls over).
        ciphertext = mirror.resolve("diary.txt").read(0, len(secret))
        from repro.fs.cryptfs import xor_block
        recovered = xor_block(ciphertext[:9], b"home-dir-key", 0)
        print("read after primary disk failure:", recovered == secret[:9],
              f"(failovers: {mirror.failovers})")

    device_a.clear_bad_blocks()
    print(f"virtual time: {world.clock.now_us / 1000:.1f} ms")


if __name__ == "__main__":
    main()
