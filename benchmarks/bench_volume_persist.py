"""Persistent-volume mount and remount costs across image sizes.

For each population size (1k / 10k / 100k files, spread over
subdirectories), the benchmark formats a volume on an ``ImageBlockStore``
disk image, builds the tree, cleanly unmounts, and then measures what a
*remount* costs against what the warm volume already had:

* ``mount_us`` / ``mount_reads`` — virtual time and device reads for
  ``Volume.mount`` (superblock + bitmaps + the whole i-node table; the
  disk layer's boot cost);
* ``warm_stat_us`` — path lookup + attribute fetch on the volume that
  built the tree (dentry cache hot: zero disk I/O);
* ``cold_stat_us`` / ``cold_stat_reads`` — the same lookups on the
  freshly remounted volume, whose dentry cache is empty (every
  directory read pays real disk transfers);
* ``unmount_writes`` — blocks flushed by the clean unmount (the ordered
  bitmap -> indirect -> i-node -> superblock sequence).

Everything is virtual-time deterministic: the same geometry, the same
allocation order, the same record bytes on every run.  Images live in a
temporary directory and are deleted on exit; sizes are chosen so the
full build stays CI-feasible (bulk ingest via ``Volume.create_many``).

Usage (from the repo root)::

    PYTHONPATH=src:. python benchmarks/bench_volume_persist.py [--smoke]
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from benchmarks.emit_common import emit, ensure_repo_on_path

ensure_repo_on_path()

from repro.storage import FileType, Volume
from repro.world import World

#: (cell name, file count, directories, device blocks, i-nodes).  The
#: geometry scales with the population the way a real install would
#: size its disk, so mount cost reflects each image's own metadata
#: footprint (the i-node table dominates: blocks = i-nodes / 32).
SIZES = [
    ("1k", 1_000, 10, 2_048, 1_280),
    ("10k", 10_000, 50, 4_096, 12_800),
    ("100k", 100_000, 200, 16_384, 102_400),
]
#: Paths stat'ed per cell (same names in every cell, spread across the
#: directory fan-out, so warm and cold measure identical work).
STAT_SAMPLES = 50


def _populate(volume, files: int, dirs: int):
    """Build <dirs> directories of <files>/<dirs> files each; returns
    the (dir_name, file_name) sample list used for the stat probes."""
    root = volume.sb.root_ino
    per_dir = files // dirs
    samples = []
    for d in range(dirs):
        dname = f"d{d:03d}"
        dino = volume.create(root, dname, FileType.DIRECTORY).ino
        volume.create_many(dino, [f"f{i:05d}" for i in range(per_dir)])
        samples.append((dname, f"f{per_dir // 2:05d}"))
    step = max(1, len(samples) // STAT_SAMPLES)
    return samples[::step][:STAT_SAMPLES]


def _stat_all(volume, samples):
    """Lookup + attribute fetch for every sample path; returns virtual
    microseconds and device reads consumed."""
    device = volume.device
    root = volume.sb.root_ino
    t0 = device.world.clock.now_us
    r0 = device.reads
    for dname, fname in samples:
        dino = volume.lookup(root, dname)
        ino = volume.lookup(dino, fname)
        volume.iget(ino)
    return (
        round(device.world.clock.now_us - t0, 3),
        device.reads - r0,
    )


def _run_cell(files: int, dirs: int, num_blocks: int, inode_count: int,
              image_dir: str) -> dict:
    path = os.path.join(image_dir, f"vol_{files}.img")
    world = World()
    node = world.create_node("bench")
    device = world.create_image(node.nucleus, path, num_blocks=num_blocks)
    clock = world.clock

    t0 = clock.now_us
    volume = Volume.mkfs(device, inode_count=inode_count)
    samples = _populate(volume, files, dirs)
    build_us = round(clock.now_us - t0, 3)

    warm_us, warm_reads = _stat_all(volume, samples)

    t0 = clock.now_us
    w0 = device.writes
    volume.unmount()
    unmount_writes = device.writes - w0
    unmount_us = round(clock.now_us - t0, 3)

    t0 = clock.now_us
    r0 = device.reads
    remounted = Volume.mount(device)
    mount_us = round(clock.now_us - t0, 3)
    mount_reads = device.reads - r0
    assert remounted.was_clean

    cold_us, cold_reads = _stat_all(remounted, samples)
    device.close()
    image_bytes = os.path.getsize(path)
    os.unlink(path)

    return {
        "files": files,
        "directories": dirs,
        "build_us": build_us,
        "unmount_us": unmount_us,
        "unmount_writes": unmount_writes,
        "mount_us": mount_us,
        "mount_reads": mount_reads,
        "warm_stat_us": warm_us,
        "warm_stat_reads": warm_reads,
        "cold_stat_us": cold_us,
        "cold_stat_reads": cold_reads,
        "stat_samples": STAT_SAMPLES,
        # Logical image size is geometry-determined, hence deterministic.
        # (The *allocated* size shows the sparse win but depends on the
        # host file system, so it stays out of the committed record.)
        "image_logical_mb": round(image_bytes / (1024 * 1024), 2),
    }


def build_record() -> dict:
    with tempfile.TemporaryDirectory(prefix="bench_volume_") as image_dir:
        cells = {
            name: _run_cell(files, dirs, num_blocks, inode_count, image_dir)
            for name, files, dirs, num_blocks, inode_count in SIZES
        }
    return {
        "workload": {
            "description": (
                "format + populate a volume on a sparse disk image, "
                "cleanly unmount, remount, and stat through cold caches"
            ),
            "stat_samples": STAT_SAMPLES,
            "sizes": {
                name: {
                    "files": files,
                    "num_blocks": num_blocks,
                    "inode_count": inode_count,
                }
                for name, files, _dirs, num_blocks, inode_count in SIZES
            },
        },
        "cells": cells,
    }


def summarize(record: dict) -> str:
    cells = record["cells"]
    big = cells["100k"]
    return (
        f"mount: {cells['1k']['mount_us'] / 1000:.1f}ms (1k) -> "
        f"{big['mount_us'] / 1000:.1f}ms (100k, {big['mount_reads']} reads); "
        f"100k stat warm {big['warm_stat_us'] / 1000:.2f}ms vs cold "
        f"{big['cold_stat_us'] / 1000:.2f}ms; "
        f"image {big['image_logical_mb']} MB logical (sparse on disk)"
    )


def main(argv=None) -> int:
    return emit("BENCH_volume.json", build_record, summarize, argv)


if __name__ == "__main__":
    sys.exit(main())
