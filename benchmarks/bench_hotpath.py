"""Wall-clock hot-path throughput — the simulator's *own* speed.

Every other benchmark in this directory measures virtual time: the
modeled cost of the paper's mechanisms, deterministic to the last
microsecond.  This one measures the opposite — how many operations per
*real* second the Python hot paths sustain — because interpreter
overhead, not modeled cost, is what bounds big experiments (the macro
workload drives ~2k invocations for a toy build; a 2048-client load
sweep schedules millions of events).

Four scenarios, each timed with :func:`time.perf_counter` around the
hot loop only (world construction and re-dirtying excluded), reported
as the median of ``--repeats`` runs:

* ``cached_reads_per_sec`` — :meth:`Mapping.read` of resident pages
  through the VMM page store (the user-load fast path).
* ``flush_pages_per_sec`` — per-page ``VmCache.sync`` write-back of
  dirty pages through the full two-domain SFS dispatch spine.
* ``faults_per_sec`` — page faults refilled from the coherency layer's
  warm block cache (fault + channel dispatch, no modeled disk).
* ``events_per_sec`` — discrete-event scheduler frames (think/request
  alternation) with no file system at all.

Unlike the virtual-time records, the committed numbers are inherently
host-dependent; the regression gate compares them with a wider (25%)
tolerance to absorb timer and scheduler noise.

Usage (from the repo root)::

    PYTHONPATH=src:. python benchmarks/bench_hotpath.py [--smoke]
        [--profile] [--repeats N]

``--smoke`` runs tiny iteration counts and does not write the record;
``--profile`` additionally dumps cProfile's hottest functions per
scenario to ``benchmarks/PROFILE_hotpath.txt`` (uploaded as a CI
artifact by the ``bench-hotpath`` job).
"""

import argparse
import cProfile
import io
import os
import pstats
import statistics
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from benchmarks.emit_common import (
    BENCH_DIR,
    dump_record,
    ensure_repo_on_path,
    env_summary,
    write_record,
)

ensure_repo_on_path()

from repro.fs.sfs import create_sfs
from repro.sim.scheduler import Scheduler, request, think
from repro.storage.block_device import BlockDevice
from repro.types import PAGE_SIZE, AccessRights
from repro.world import World

FILENAME = "BENCH_hotpath.json"
PROFILE_ARTIFACT = "PROFILE_hotpath.txt"

#: Iteration counts for the committed record vs the CI smoke run.
FULL = {
    "reads": 60_000,
    "read_pages": 8,
    "flush_rounds": 40,
    "flush_pages": 64,
    "fault_rounds": 80,
    "fault_pages": 64,
    "clients": 64,
    "requests": 40,
    "repeats": 5,
}
SMOKE = {
    "reads": 2_000,
    "read_pages": 8,
    "flush_rounds": 3,
    "flush_pages": 16,
    "fault_rounds": 4,
    "fault_pages": 16,
    "clients": 8,
    "requests": 5,
    "repeats": 3,
}


def _mapped_file(pages: int, access: AccessRights):
    """A two-domain SFS stack with one ``pages``-page file mapped into
    an address space through the VMM.  Returns ``(user, mapping)``; all
    setup cost happens here, outside the timed region."""
    world = World()
    node = world.create_node("bench")
    device = BlockDevice(node.nucleus, "sd0", 32768)
    stack = create_sfs(node, device, placement="two_domains")
    user = world.create_user_domain(node)
    with user.activate():
        f = stack.top.create_file("hot.dat")
        f.write(0, bytes(range(256)) * (pages * PAGE_SIZE // 256))
        f.sync()
        handle = stack.top.resolve("hot.dat")
        mapping = node.vmm.create_address_space("bench").map(handle, access)
    return user, mapping


def run_cached_reads(cfg: dict):
    """Page-size reads of resident pages; returns (ops, seconds)."""
    pages = cfg["read_pages"]
    user, mapping = _mapped_file(pages, AccessRights.READ_ONLY)
    with user.activate():
        for index in range(pages):  # warm: fault everything in
            mapping.read(index * PAGE_SIZE, 1)
        offsets = [(i % pages) * PAGE_SIZE for i in range(cfg["reads"])]
        read = mapping.read
        t0 = time.perf_counter()
        for offset in offsets:
            read(offset, PAGE_SIZE)
        elapsed = time.perf_counter() - t0
    return cfg["reads"], elapsed


def run_flush_pages(cfg: dict):
    """Per-page write-back of dirty pages through the dispatch spine;
    only the ``sync`` calls are timed, not the re-dirtying writes."""
    pages = cfg["flush_pages"]
    user, mapping = _mapped_file(pages, AccessRights.READ_WRITE)
    cache = mapping.cache
    flushed = 0
    elapsed = 0.0
    with user.activate():
        for round_no in range(cfg["flush_rounds"]):
            marker = bytes([round_no & 0xFF]) * 32
            for index in range(pages):
                mapping.write(index * PAGE_SIZE, marker)
            t0 = time.perf_counter()
            flushed += cache.sync()
            elapsed += time.perf_counter() - t0
    return flushed, elapsed


def run_faults(cfg: dict):
    """Refault dropped pages out of the warm coherency cache; the
    drop between rounds is untimed."""
    pages = cfg["fault_pages"]
    user, mapping = _mapped_file(pages, AccessRights.READ_ONLY)
    cache = mapping.cache
    faulted = 0
    elapsed = 0.0
    with user.activate():
        for index in range(pages):  # warm the coherency-layer cache
            mapping.read(index * PAGE_SIZE, 1)
        read = mapping.read
        for _ in range(cfg["fault_rounds"]):
            cache.store.drop_range(0, pages * PAGE_SIZE)
            t0 = time.perf_counter()
            for index in range(pages):
                read(index * PAGE_SIZE, 1)
            elapsed += time.perf_counter() - t0
            faulted += pages
    return faulted, elapsed


def run_events(cfg: dict):
    """Scheduler frames: each client alternates think and a no-op
    request, so both frame kinds are exercised."""
    world = World()
    sched = Scheduler(world)

    def noop():
        return None

    def client(requests_per_client: int):
        for _ in range(requests_per_client):
            yield think(100.0)
            yield request(noop)

    for i in range(cfg["clients"]):
        sched.spawn(client(cfg["requests"]), name=f"c{i}")
    t0 = time.perf_counter()
    sched.run_all()
    elapsed = time.perf_counter() - t0
    return cfg["clients"] * cfg["requests"] * 2, elapsed


SCENARIOS = [
    ("cached_reads_per_sec", run_cached_reads),
    ("flush_pages_per_sec", run_flush_pages),
    ("faults_per_sec", run_faults),
    ("events_per_sec", run_events),
]


def measure(cfg: dict) -> dict:
    """Median ops/sec per scenario over ``cfg['repeats']`` fresh runs."""
    metrics = {}
    for name, scenario in SCENARIOS:
        rates = []
        for _ in range(cfg["repeats"]):
            ops, seconds = scenario(cfg)
            rates.append(ops / seconds if seconds > 0 else 0.0)
        metrics[name] = round(statistics.median(rates), 1)
    return metrics


def profile_scenarios(cfg: dict, top_n: int = 25) -> str:
    """One profiled repetition per scenario; returns the report text."""
    sections = []
    for name, scenario in SCENARIOS:
        profiler = cProfile.Profile()
        profiler.enable()
        scenario(cfg)
        profiler.disable()
        buf = io.StringIO()
        stats = pstats.Stats(profiler, stream=buf)
        stats.sort_stats("cumulative").print_stats(top_n)
        sections.append(f"=== {name} ===\n{buf.getvalue()}")
    return "\n".join(sections)


def build_record(cfg: dict = FULL) -> dict:
    return {
        "config": {key: value for key, value in sorted(cfg.items())},
        "metrics": measure(cfg),
        "timing": "wall-clock ops/sec, median of repeats; host-dependent",
    }


def summarize(record: dict) -> str:
    metrics = record["metrics"]
    return "; ".join(f"{key}={value:,.0f}" for key, value in metrics.items())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny iteration counts; validate the record, do not write it",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=f"dump cProfile hot functions to benchmarks/{PROFILE_ARTIFACT}",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="override the median-of-N repeat count",
    )
    args = parser.parse_args(argv)
    env = env_summary()
    print(
        "env: "
        + " ".join(f"{key}={value}" for key, value in sorted(env.items()))
    )
    cfg = dict(SMOKE if args.smoke else FULL)
    if args.repeats is not None:
        cfg["repeats"] = args.repeats
    record = build_record(cfg)
    rendered = dump_record(record)  # validates JSON-serializability
    print(summarize(record))
    if args.profile:
        artifact = os.path.join(BENCH_DIR, PROFILE_ARTIFACT)
        with open(artifact, "w") as fh:
            fh.write(profile_scenarios(cfg))
        print(f"wrote profile artifact {artifact}")
    if args.smoke:
        print(f"smoke OK: {FILENAME} ({len(rendered)} bytes, not written)")
        return 0
    out = os.path.join(BENCH_DIR, FILENAME)
    write_record(out, record)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
