"""Figure 6 — COMPFS stacked on SFS, case 2 (C3-P3 coherency channel).

"COMPFS acts as a cache manager to SFS by establishing a P3-C3
connection... Mappings of file_SFS and file_COMP are coherent with
respect to each other."
"""

import pytest

from benchmarks.conftest import print_banner
from repro.bench.figures import fig06_compfs_case2


@pytest.fixture(scope="module")
def fig06():
    result = fig06_compfs_case2()
    body = "\n".join(f"{key}: {value}" for key, value in result.items())
    print_banner("Figure 6: COMPFS case 2 (coherent)", body)
    return result


class TestFig06Shape:
    def test_direct_write_observed(self, fig06):
        """The defining behaviour of case 2 — contrast with Figure 5."""
        assert fig06["compfs_sees_direct_write"]

    def test_coherency_actions_reached_compfs(self, fig06):
        assert fig06["flush_events_at_compfs"] >= 1

    def test_compression_unaffected_by_coherence(self, fig06):
        assert fig06["stored_is_compressed"]
        assert fig06["stored_bytes"] < fig06["plain_bytes"]


def test_bench_compfs_coherent_write(benchmark, fig06):
    """Case-2 writes pay compression + write-through — the price of
    coherence, measured."""
    from repro.fs.compfs import CompFs
    from repro.fs.sfs import create_sfs
    from repro.ipc.domain import Credentials
    from repro.storage.block_device import RamDevice
    from repro.world import World

    world = World()
    node = world.create_node("b")
    stack = create_sfs(node, RamDevice(node.nucleus, "ram0", 8192))
    compfs = CompFs(node.create_domain("cz", Credentials("c", True)), coherent=True)
    compfs.stack_on(stack.top)
    user = world.create_user_domain(node)
    with user.activate():
        f = compfs.create_file("w.dat")
        f.write(0, b"seed " * 200)
        benchmark(lambda: f.write(0, b"updated data"))
