"""Golden render drift check.

Re-renders the quick Table 2 / Table 3 calibration tables and diffs them
against the committed goldens under ``tests/golden/``.  The tier-1 suite
already asserts byte equality; this script exists for CI to print a
*readable* unified diff when they drift, so the culprit change is
obvious from the job log instead of a bare assertion failure.

Usage (from the repo root)::

    PYTHONPATH=src:. python benchmarks/check_golden_drift.py
"""

import difflib
import os
import pathlib
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from benchmarks.emit_common import ensure_repo_on_path

ensure_repo_on_path()

GOLDEN = pathlib.Path(__file__).resolve().parent.parent / "tests" / "golden"


def renders():
    from repro.bench.table2 import run_table2
    from repro.bench.table3 import run_table3

    yield "table2_quick.txt", run_table2(iterations=5, runs=1).render() + "\n"
    yield "table3_quick.txt", run_table3(iterations=5, runs=1).render() + "\n"


def main() -> int:
    drifted = 0
    for name, fresh in renders():
        committed = (GOLDEN / name).read_text()
        if fresh == committed:
            print(f"  [  ok] tests/golden/{name} ({len(fresh)} bytes)")
            continue
        drifted += 1
        print(f"  [FAIL] tests/golden/{name} drifted:")
        sys.stdout.writelines(
            difflib.unified_diff(
                committed.splitlines(keepends=True),
                fresh.splitlines(keepends=True),
                fromfile=f"tests/golden/{name} (committed)",
                tofile=f"{name} (re-rendered)",
            )
        )
    if drifted:
        print(
            f"\ngolden drift: {drifted} render(s) no longer match.  If the "
            "change is intentional, regenerate the goldens and commit them "
            "with an explanation of what moved."
        )
        return 1
    print("\ngolden renders match the committed files.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
