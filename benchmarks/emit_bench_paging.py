"""Emit BENCH_paging.json — the vectored-paging benchmark record.

Runs the macro workload (per placement), the vectored-flush comparison
(batching off/on), and the read-ahead ablations (bare stack and through
CRYPTFS), recording virtual elapsed time plus invocation / device-write
counts for each scenario.

Usage (from the repo root)::

    PYTHONPATH=src:. python benchmarks/emit_bench_paging.py

Named ``emit_*`` rather than ``bench_*`` so pytest does not collect it.
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from benchmarks.bench_ablation_readahead import _cold_scan, _stacked_scan
from benchmarks.bench_macro_workload import _run, _run_flush
from repro.fs.sfs import PLACEMENTS

OUT = os.path.join(os.path.dirname(__file__), "BENCH_paging.json")


def main() -> None:
    record = {
        "macro_workload": {p: _run(p) for p in PLACEMENTS},
        "vectored_flush": {
            "per_page": _run_flush(False),
            "batched": _run_flush(True),
        },
        "readahead_bare": {
            f"window_{w}": _cold_scan(w) for w in (0, 2, 4, 8, 16)
        },
        "readahead_through_cryptfs": {
            f"window_{w}": _stacked_scan(w) for w in (0, 4, 8)
        },
    }
    with open(OUT, "w") as fh:
        fh.write(json.dumps(record, indent=2, sort_keys=True))
        fh.write("\n")
    flush = record["vectored_flush"]
    gain = 1 - flush["batched"]["elapsed_ms"] / flush["per_page"]["elapsed_ms"]
    print(f"wrote {OUT}")
    print(f"vectored flush gain: {gain:.1%}")


if __name__ == "__main__":
    main()
