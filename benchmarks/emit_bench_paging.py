"""Emit BENCH_paging.json — the vectored-paging benchmark record.

Runs the macro workload (per placement), the vectored-flush comparison
(batching off/on), and the read-ahead ablations (bare stack and through
CRYPTFS), recording virtual elapsed time plus invocation / device-write
counts for each scenario.

Usage (from the repo root)::

    PYTHONPATH=src:. python benchmarks/emit_bench_paging.py [--smoke]

Named ``emit_*`` rather than ``bench_*`` so pytest does not collect it.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from benchmarks.emit_common import emit, ensure_repo_on_path

ensure_repo_on_path()

from benchmarks.bench_ablation_readahead import _cold_scan, _stacked_scan
from benchmarks.bench_macro_workload import _run, _run_flush
from repro.fs.sfs import PLACEMENTS


def build_record() -> dict:
    return {
        "macro_workload": {p: _run(p) for p in PLACEMENTS},
        "vectored_flush": {
            "per_page": _run_flush(False),
            "batched": _run_flush(True),
        },
        "readahead_bare": {
            f"window_{w}": _cold_scan(w) for w in (0, 2, 4, 8, 16)
        },
        "readahead_through_cryptfs": {
            f"window_{w}": _stacked_scan(w) for w in (0, 4, 8)
        },
    }


def summarize(record: dict) -> str:
    flush = record["vectored_flush"]
    gain = 1 - flush["batched"]["elapsed_ms"] / flush["per_page"]["elapsed_ms"]
    return f"vectored flush gain: {gain:.1%}"


def main(argv=None) -> int:
    return emit("BENCH_paging.json", build_record, summarize, argv)


if __name__ == "__main__":
    sys.exit(main())
