"""Table 2 — Spring SFS stacking overhead.

Reproduces the paper's central table: open / 4KB read / 4KB write / stat
across {not stacked, stacked one domain, stacked two domains}, cached
and uncached, normalized to the non-stacked implementation.

Paper shape: open +39% (one domain) / +101% (two domains); cached
read/write/stat 100% everywhere; uncached rows disk-bound (overhead
insignificant); cached 4KB write 0.16 ms; uncached 13.7 ms.
"""

import pytest

from benchmarks.conftest import print_banner
from repro.bench.table2 import PLACEMENTS, run_table2
from repro.types import PAGE_SIZE


@pytest.fixture(scope="module")
def table2():
    result = run_table2(iterations=30, runs=3)
    print_banner("Table 2: Spring SFS performance", result.render())
    return result


class TestTable2Shape:
    def test_open_overhead_one_domain(self, table2):
        pct = table2.normalized_pct("open", True, "one_domain")
        assert 130 <= pct <= 148, f"paper: 139%, measured {pct:.1f}%"

    def test_open_overhead_two_domains(self, table2):
        pct = table2.normalized_pct("open", True, "two_domains")
        assert 190 <= pct <= 212, f"paper: 201%, measured {pct:.1f}%"

    @pytest.mark.parametrize("op", ["4KB read", "4KB write", "stat"])
    @pytest.mark.parametrize("placement", ["one_domain", "two_domains"])
    def test_cached_ops_no_measurable_overhead(self, table2, op, placement):
        pct = table2.normalized_pct(op, True, placement)
        assert pct == pytest.approx(100.0, abs=2.0)

    @pytest.mark.parametrize("op", ["4KB read", "4KB write"])
    def test_uncached_ops_disk_bound(self, table2, op):
        """'The disk overhead is much higher than the cross domain call
        overhead' — stacking adds <5% when every op hits the disk."""
        for placement in ("one_domain", "two_domains"):
            pct = table2.normalized_pct(op, False, placement)
            assert pct <= 105.0

    def test_cached_write_absolute_anchor(self, table2):
        mean = table2.mean_us("4KB write", True, "not_stacked")
        assert mean == pytest.approx(160.0, abs=10)  # paper: 0.16 ms

    def test_uncached_write_absolute_anchor(self, table2):
        mean = table2.mean_us("4KB write", False, "not_stacked")
        assert mean == pytest.approx(13_700, rel=0.05)  # paper: 13.7 ms


class TestSimulatorCost:
    """Wall-clock cost of the simulated operations (pytest-benchmark).
    These take the table2 fixture so the reproduced table prints even
    under --benchmark-only."""

    def test_bench_cached_read(self, benchmark, table2):
        from repro.bench.table2 import _setup

        world, stack, user = _setup("two_domains", cache=True)
        with user.activate():
            handle = stack.top.resolve("bench.dat")
            handle.read(0, PAGE_SIZE)

            def op():
                return handle.read(0, PAGE_SIZE)

            benchmark(op)

    def test_bench_open(self, benchmark, table2):
        from repro.bench.table2 import _setup

        world, stack, user = _setup("two_domains", cache=True)
        with user.activate():
            benchmark(lambda: stack.top.resolve("bench.dat"))
