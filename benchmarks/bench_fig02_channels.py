"""Figure 2 — pager-cache object channel topology.

"Pager 1 is the pager for two distinct memory objects cached by VMM 1,
so there are two pager-cache object connections... Pager 2 is the pager
for a single memory object cached at both VMM 1 and VMM 2, so there is a
pager-cache object connection between Pager 2 and each of the VMMs."
"""

import pytest

from benchmarks.conftest import print_banner
from repro.bench.figures import fig02_pager_cache_channels


@pytest.fixture(scope="module")
def fig02():
    result = fig02_pager_cache_channels()
    body = "\n".join(f"{key}: {value}" for key, value in result.items())
    print_banner("Figure 2: pager-cache channels", body)
    return result


class TestFig02Shape:
    def test_pager1_has_two_channels_to_vmm1(self, fig02):
        assert fig02["pager1_channels_to_vmm1"] == 2

    def test_pager2_has_one_channel_per_vmm(self, fig02):
        assert fig02["pager2_channels"] == 2

    def test_vmm2_caches_only_the_shared_object(self, fig02):
        assert fig02["vmm2_caches"] == 1


def test_bench_channel_setup(benchmark, fig02):
    """Cost of one full map (bind + channel exchange + first fault)."""
    from repro.fs.sfs import create_sfs
    from repro.storage.block_device import BlockDevice
    from repro.types import PAGE_SIZE, AccessRights
    from repro.world import World

    world = World()
    node = world.create_node("b")
    stack = create_sfs(node, BlockDevice(node.nucleus, "sd0", 8192))
    user = world.create_user_domain(node)
    with user.activate():
        f = stack.top.create_file("m.dat")
        f.write(0, b"m" * PAGE_SIZE)
        aspace = node.vmm.create_address_space("b")

        def map_and_touch():
            mapping = aspace.map(f, AccessRights.READ_ONLY)
            mapping.read(0, 8)
            aspace.unmap(mapping)

        benchmark(map_and_touch)
