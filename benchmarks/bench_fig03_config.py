"""Figure 3 — implementation vs administrative decisions.

Builds the figure's exact configuration: base file systems fs1/fs2 on
their own disks, fs3 (compression) stacked on fs1, fs4 (mirroring)
stacked on fs1 AND fs2, everything exported by administrative choice.
"""

import pytest

from benchmarks.conftest import print_banner
from repro.bench.figures import fig03_configuration


@pytest.fixture(scope="module")
def fig03():
    result = fig03_configuration()
    body = result["diagram"] + "\n" + "\n".join(
        f"{key}: {value}"
        for key, value in result.items()
        if key != "diagram"
    )
    print_banner("Figure 3: stack configuration", body)
    return result


class TestFig03Shape:
    def test_fs3_uses_one_underlying_fs(self, fig03):
        assert fig03["fs3_unders"] == ["coherency"]

    def test_fs4_uses_two_underlying_fs(self, fig03):
        assert fig03["fs4_unders"] == ["coherency", "coherency"]

    def test_mirrored_write_reaches_both_disks(self, fig03):
        assert fig03["replicas_match"]

    def test_administrative_export_choices(self, fig03):
        assert set(fig03["exported"]) >= {"fs1", "fs2", "fs3", "fs4"}


def test_bench_mirrored_write(benchmark, fig03):
    from repro.fs.mirrorfs import MirrorFs
    from repro.fs.sfs import create_sfs
    from repro.ipc.domain import Credentials
    from repro.storage.block_device import BlockDevice
    from repro.world import World

    world = World()
    node = world.create_node("b")
    fs1 = create_sfs(node, BlockDevice(node.nucleus, "d1", 4096), name="fs1").top
    fs2 = create_sfs(node, BlockDevice(node.nucleus, "d2", 4096), name="fs2").top
    mirror = MirrorFs(node.create_domain("m", Credentials("m", True)))
    mirror.stack_on(fs1)
    mirror.stack_on(fs2)
    user = world.create_user_domain(node)
    with user.activate():
        f = mirror.create_file("r.dat")
        benchmark(lambda: f.write(0, b"replica data"))
