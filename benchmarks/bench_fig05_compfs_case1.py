"""Figure 5 — COMPFS stacked on SFS, case 1 (no coherency channel).

The paper's warning made observable: "if a client writes directly into
file_COMP the corresponding changes may not be reflected into file_SFS
until some time later, or they may be clobbered by direct writes to
file_SFS" — without the C3-P3 connection, a COMPFS client reads STALE
data after a direct write to the underlying file.
"""

import pytest

from benchmarks.conftest import print_banner
from repro.bench.figures import fig05_compfs_case1


@pytest.fixture(scope="module")
def fig05():
    result = fig05_compfs_case1()
    body = "\n".join(f"{key}: {value}" for key, value in result.items())
    print_banner("Figure 5: COMPFS case 1 (not coherent)", body)
    return result


class TestFig05Shape:
    def test_data_really_compressed(self, fig05):
        assert fig05["stored_is_compressed"]
        assert fig05["stored_bytes"] < fig05["plain_bytes"]

    def test_direct_write_not_observed(self, fig05):
        """The defining (mis)behaviour of case 1."""
        assert not fig05["compfs_sees_direct_write"]

    def test_no_coherency_traffic(self, fig05):
        assert fig05["flush_events_at_compfs"] == 0


def test_bench_compfs_cached_read(benchmark, fig05):
    from repro.fs.compfs import CompFs
    from repro.fs.sfs import create_sfs
    from repro.ipc.domain import Credentials
    from repro.storage.block_device import RamDevice
    from repro.world import World

    world = World()
    node = world.create_node("b")
    stack = create_sfs(node, RamDevice(node.nucleus, "ram0", 8192))
    compfs = CompFs(node.create_domain("cz", Credentials("c", True)), coherent=False)
    compfs.stack_on(stack.top)
    user = world.create_user_domain(node)
    with user.activate():
        f = compfs.create_file("r.dat")
        f.write(0, b"compressible " * 500)
        benchmark(lambda: f.read(0, 4096))
