"""Figure 7 — DFS stacked on SFS.

Local binds are forwarded (local clients share the underlying cache and
DFS is out of the local page path); remote clients go through DFS, which
keeps everything coherent via its P2-C2 cache-manager channel to SFS.
"""

import pytest

from benchmarks.conftest import print_banner
from repro.bench.figures import fig07_dfs


@pytest.fixture(scope="module")
def fig07():
    result = fig07_dfs()
    body = "\n".join(f"{key}: {value}" for key, value in result.items())
    print_banner("Figure 7: DFS on SFS", body)
    return result


class TestFig07Shape:
    def test_local_binds_forwarded(self, fig07):
        assert fig07["binds_forwarded"] >= 1

    def test_local_page_path_bypasses_dfs(self, fig07):
        assert fig07["local_channel_bypasses_dfs"]

    def test_remote_reads_correct(self, fig07):
        assert fig07["remote_read_matches"]

    def test_local_sees_remote_write(self, fig07):
        """The coherency fan-out across the network actually ran."""
        assert fig07["local_sees_remote_write"]
        assert fig07["network_messages"] > 0

    def test_remote_binds_served_by_dfs(self, fig07):
        assert fig07["dfs_served_binds"] >= 1


def test_bench_remote_4k_read(benchmark, fig07):
    """Network-bound remote read through the DFS protocol."""
    from repro.fs.dfs import export_dfs, mount_remote
    from repro.fs.sfs import create_sfs
    from repro.storage.block_device import RamDevice
    from repro.types import PAGE_SIZE
    from repro.world import World

    world = World()
    server = world.create_node("server")
    client = world.create_node("client")
    stack = create_sfs(server, RamDevice(server.nucleus, "ram0", 8192))
    dfs = export_dfs(server, stack.top)
    mount_remote(client, server, "dfs")
    su = world.create_user_domain(server, "su")
    cu = world.create_user_domain(client, "cu")
    with su.activate():
        dfs.create_file("r.dat").write(0, b"r" * PAGE_SIZE)
    with cu.activate():
        rf = client.fs_context.resolve("dfs@server").resolve("r.dat")
        benchmark(lambda: rf.read(0, PAGE_SIZE))
