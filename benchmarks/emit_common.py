"""Shared plumbing for the ``emit_*`` benchmark-record writers.

Each emitter supplies a ``build()`` that returns the record dict and an
optional ``summarize(record)`` for the one-line headline; everything
else — environment capture, canonical JSON writing, smoke mode — lives
here so the emitters stay byte-for-byte reproducible and identically
behaved.

Canonical form: ``json.dumps(record, indent=2, sort_keys=True)`` plus a
trailing newline.  The environment summary is *printed*, never embedded
in the record, so re-running on a different host cannot perturb the
committed bytes.

``--smoke`` builds and validates the record without touching the
committed file — CI uses it to exercise the benchmark paths cheaply.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from typing import Callable, Dict, Optional

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))


def ensure_repo_on_path() -> None:
    """Make ``benchmarks.*`` and ``repro.*`` importable when an emitter
    is run as a script from anywhere."""
    repo_root = os.path.dirname(BENCH_DIR)
    for entry in (repo_root, os.path.join(repo_root, "src")):
        if entry not in sys.path:
            sys.path.insert(0, entry)


def env_summary() -> Dict[str, str]:
    """The execution environment, for the console only (see module
    docstring for why it must stay out of the record)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
    }


def dump_record(record: dict) -> str:
    """The canonical byte form of a benchmark record."""
    return json.dumps(record, indent=2, sort_keys=True) + "\n"


def write_record(path: str, record: dict) -> None:
    with open(path, "w") as fh:
        fh.write(dump_record(record))


def emit(
    filename: str,
    build: Callable[[], dict],
    summarize: Optional[Callable[[dict], str]] = None,
    argv: Optional[list] = None,
) -> int:
    """Run one emitter: build the record and write it to
    ``benchmarks/<filename>``, or just validate it under ``--smoke``."""
    parser = argparse.ArgumentParser(description=f"emit {filename}")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="build and validate the record but do not write the file",
    )
    args = parser.parse_args(argv)
    env = env_summary()
    print(
        "env: "
        + " ".join(f"{key}={value}" for key, value in sorted(env.items()))
    )
    record = build()
    rendered = dump_record(record)  # validates JSON-serializability
    if args.smoke:
        print(f"smoke OK: {filename} ({len(rendered)} bytes, not written)")
        return 0
    out = os.path.join(BENCH_DIR, filename)
    write_record(out, record)
    print(f"wrote {out}")
    if summarize is not None:
        print(summarize(record))
    return 0
