"""Ablation F — coherency protocol choice (paper sec. 3.3.3/6.2).

"The coherency protocol is not specified by the architecture — pagers
are free to implement whatever coherency protocol they wish."  The
paper's production choice is per-block MRSW.  This ablation compares it
against a whole-file single-owner protocol under a false-sharing
workload: two remote clients repeatedly writing *different* blocks of
the same file.
"""

import pytest

from benchmarks.conftest import print_banner
from repro.bench.harness import TableFormatter
from repro.fs.coherency import CoherencyLayer
from repro.fs.dfs import DfsLayer, mount_remote
from repro.fs.disk_layer import DiskLayer
from repro.ipc.domain import Credentials
from repro.storage.block_device import RamDevice
from repro.types import PAGE_SIZE, AccessRights
from repro.world import World

ROUNDS = 8


def _run(protocol: str):
    world = World()
    server = world.create_node("server")
    client_a = world.create_node("clientA")
    client_b = world.create_node("clientB")
    device = RamDevice(server.nucleus, "ram", 8192)
    disk = DiskLayer(server.create_domain("disk"), device, format_device=True)
    coherency = CoherencyLayer(
        server.create_domain("coh", Credentials("c", True)), protocol=protocol
    )
    coherency.stack_on(disk)
    dfs = DfsLayer(
        server.create_domain("dfs", Credentials("d", True)), protocol=protocol
    )
    dfs.stack_on(coherency)
    server.fs_context.bind("dfs", dfs)
    mount_remote(client_a, server, "dfs")
    mount_remote(client_b, server, "dfs")
    su = world.create_user_domain(server, "su")
    with su.activate():
        dfs.create_file("hot.bin").write(0, bytes(8 * PAGE_SIZE))

    mappings = []
    for client, name in ((client_a, "ua"), (client_b, "ub")):
        cu = world.create_user_domain(client, name)
        with cu.activate():
            rf = client.fs_context.resolve("dfs@server").resolve("hot.bin")
            mappings.append(
                (cu, client.vmm.create_address_space(name).map(
                    rf, AccessRights.READ_WRITE))
            )
    (cu_a, m_a), (cu_b, m_b) = mappings

    start = world.clock.now_us
    messages_before = world.network.messages
    snapshot = world.counters.snapshot()
    for round_number in range(ROUNDS):
        with cu_a.activate():
            m_a.write(0, bytes([round_number + 1]) * 64)
        with cu_b.activate():
            m_b.write(4 * PAGE_SIZE, bytes([round_number + 101]) * 64)
    delta = world.counters.delta_since(snapshot)
    return {
        "elapsed_ms": (world.clock.now_us - start) / 1000.0,
        "network_messages": world.network.messages - messages_before,
        "flushes": delta.get("vmm.flush_back", 0),
        "faults": delta.get("vmm.fault", 0),
    }


@pytest.fixture(scope="module")
def ablation():
    results = {p: _run(p) for p in ("per_block", "whole_file")}
    table = TableFormatter(
        f"Ablation F: {ROUNDS} disjoint-write rounds by two remote clients",
        ["time", "network msgs", "remote flushes", "refaults"],
    )
    for protocol, data in results.items():
        table.add_row(
            protocol,
            [
                data["elapsed_ms"] * 1000,
                data["network_messages"],
                data["flushes"],
                data["faults"],
            ],
        )
    print_banner("Ablation: coherency protocol", table.render())
    return results


class TestProtocolAblation:
    def test_per_block_avoids_false_sharing(self, ablation):
        """After the first round, disjoint writers never interfere."""
        assert ablation["per_block"]["flushes"] <= 2

    def test_whole_file_ping_pongs(self, ablation):
        assert (
            ablation["whole_file"]["flushes"]
            > ablation["per_block"]["flushes"]
        )
        assert ablation["whole_file"]["faults"] > ablation["per_block"]["faults"]

    def test_per_block_cheaper_in_time_and_messages(self, ablation):
        assert (
            ablation["per_block"]["elapsed_ms"]
            < ablation["whole_file"]["elapsed_ms"]
        )
        assert (
            ablation["per_block"]["network_messages"]
            < ablation["whole_file"]["network_messages"]
        )


def test_bench_false_sharing_round(benchmark, ablation):
    benchmark(lambda: _run("per_block"))
