"""Ablation A — name caching (paper sec. 6.4, future work; implemented).

"If the open overhead caused by splitting file system layers across
domains turns out to be significant for some applications, name caching
can be used to eliminate the overhead."

Measured: open cost per placement, with and without a client-side name
cache.  With the cache every placement's repeat-open collapses to the
same (small) hit cost — the cross-domain stacking overhead is gone.
"""

import pytest

from benchmarks.conftest import print_banner
from repro.bench.harness import TableFormatter, measure
from repro.fs.sfs import PLACEMENTS, create_sfs
from repro.naming.cache import NameCache
from repro.storage.block_device import BlockDevice
from repro.types import PAGE_SIZE
from repro.world import World


def _setup(placement):
    world = World()
    node = world.create_node("bench")
    stack = create_sfs(node, BlockDevice(node.nucleus, "sd0", 8192),
                       placement=placement)
    user = world.create_user_domain(node)
    with user.activate():
        f = stack.top.create_file("bench.dat")
        f.write(0, b"b" * PAGE_SIZE)
    return world, stack, user


@pytest.fixture(scope="module")
def ablation():
    rows = {}
    for placement in PLACEMENTS:
        world, stack, user = _setup(placement)
        with user.activate():
            stack.top.resolve("bench.dat")
            plain = measure(
                world, "open", lambda: stack.top.resolve("bench.dat"), 30, 3
            )
        cache = NameCache(world)
        with user.activate():
            cache.resolve(stack.top, "bench.dat")
            cached = measure(
                world,
                "open+namecache",
                lambda: cache.resolve(stack.top, "bench.dat"),
                30,
                3,
            )
        rows[placement] = (plain.mean_us, cached.mean_us)

    table = TableFormatter(
        "Ablation A: open cost with/without name caching",
        ["no name cache", "with name cache"],
    )
    for placement, (plain_us, cached_us) in rows.items():
        table.add_row(placement, [plain_us, cached_us])
    print_banner("Ablation: name caching", table.render())
    return rows


class TestNameCacheAblation:
    def test_without_cache_placement_matters(self, ablation):
        assert ablation["two_domains"][0] > ablation["not_stacked"][0] * 1.8

    def test_with_cache_overhead_eliminated(self, ablation):
        """All placements collapse to the same hit cost."""
        hits = [ablation[p][1] for p in PLACEMENTS]
        assert max(hits) == min(hits)

    def test_cache_hit_much_cheaper_than_any_open(self, ablation):
        for placement in PLACEMENTS:
            plain, cached = ablation[placement]
            assert cached < plain / 10


def test_bench_namecache_hit(benchmark, ablation):
    world, stack, user = _setup("two_domains")
    cache = NameCache(world)
    with user.activate():
        cache.resolve(stack.top, "bench.dat")
        benchmark(lambda: cache.resolve(stack.top, "bench.dat"))
