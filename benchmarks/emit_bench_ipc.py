"""Emit BENCH_ipc.json — the compound-invocation benchmark record.

Runs the remote open+stat workload in all four ablation cells
(name cache off/on x compound off/on) and records network messages,
client->server bytes, and elapsed virtual time for each.  The
``baseline`` cell is both knobs off — the library default — so its
numbers double as a calibration check for the uncompounded path.

Usage (from the repo root)::

    PYTHONPATH=src:. python benchmarks/emit_bench_ipc.py [--smoke]

Named ``emit_*`` rather than ``bench_*`` so pytest does not collect it.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from benchmarks.emit_common import emit, ensure_repo_on_path

ensure_repo_on_path()

from benchmarks.bench_ipc_compound import CELLS, NUM_FILES, ROUNDS, _run_cell


def build_record() -> dict:
    cells = {}
    for name, use_cache, use_compound in CELLS:
        row = _run_cell(use_cache, use_compound)
        row.pop("sizes")  # correctness detail, not a benchmark number
        cells[name] = row
    return {
        "workload": {
            "description": "remote DFS-over-SFS open+stat by path",
            "files": NUM_FILES,
            "rounds": ROUNDS,
        },
        "cells": cells,
    }


def summarize(record: dict) -> str:
    baseline = record["cells"]["baseline"]["messages"]
    compound = record["cells"]["compound"]["messages"]
    reduction = 1 - compound / baseline
    return (
        f"compound message reduction: {reduction:.1%} "
        f"({baseline} -> {compound} messages)"
    )


def main(argv=None) -> int:
    return emit("BENCH_ipc.json", build_record, summarize, argv)


if __name__ == "__main__":
    sys.exit(main())
