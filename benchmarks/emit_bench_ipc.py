"""Emit BENCH_ipc.json — the compound-invocation benchmark record.

Runs the remote open+stat workload in all four ablation cells
(name cache off/on x compound off/on) and records network messages,
client->server bytes, and elapsed virtual time for each.  The
``baseline`` cell is both knobs off — the library default — so its
numbers double as a calibration check for the uncompounded path.

Usage (from the repo root)::

    PYTHONPATH=src:. python benchmarks/emit_bench_ipc.py

Named ``emit_*`` rather than ``bench_*`` so pytest does not collect it.
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from benchmarks.bench_ipc_compound import CELLS, NUM_FILES, ROUNDS, _run_cell

OUT = os.path.join(os.path.dirname(__file__), "BENCH_ipc.json")


def main() -> None:
    cells = {}
    for name, use_cache, use_compound in CELLS:
        row = _run_cell(use_cache, use_compound)
        row.pop("sizes")  # correctness detail, not a benchmark number
        cells[name] = row
    record = {
        "workload": {
            "description": "remote DFS-over-SFS open+stat by path",
            "files": NUM_FILES,
            "rounds": ROUNDS,
        },
        "cells": cells,
    }
    with open(OUT, "w") as fh:
        fh.write(json.dumps(record, indent=2, sort_keys=True))
        fh.write("\n")
    baseline = cells["baseline"]["messages"]
    compound = cells["compound"]["messages"]
    reduction = 1 - compound / baseline
    print(f"wrote {OUT}")
    print(f"compound message reduction: {reduction:.1%} "
          f"({baseline} -> {compound} messages)")


if __name__ == "__main__":
    main()
