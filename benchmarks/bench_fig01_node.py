"""Figure 1 — major system components of a Spring node.

Regenerates the figure's content as data: the domains running on a
booted node (nucleus+VMM, naming server, file servers, fs creators) and
the well-known contexts of the name space.
"""

import pytest

from benchmarks.conftest import print_banner
from repro.bench.figures import fig01_node_structure


@pytest.fixture(scope="module")
def fig01():
    result = fig01_node_structure()
    body = "\n".join(f"{key}: {value}" for key, value in result.items())
    print_banner("Figure 1: Spring node structure", body)
    return result


class TestFig01Shape:
    def test_vmm_lives_in_nucleus(self, fig01):
        assert fig01["vmm_in_nucleus"]

    def test_fs_servers_are_separate_domains(self, fig01):
        assert "sfs-disk" in fig01["domains"]
        assert "sfs-coherency" in fig01["domains"]
        assert "naming" in fig01["domains"]

    def test_well_known_contexts(self, fig01):
        assert set(fig01["root_contexts"]) >= {"fs", "fs_creators", "dev"}

    def test_creators_registered(self, fig01):
        assert "dfs_creator" in fig01["fs_creators"]
        assert "compfs_creator" in fig01["fs_creators"]


def test_bench_node_boot(benchmark, fig01):
    from repro.world import World

    counter = [0]

    def boot():
        counter[0] += 1
        world = World()
        world.create_node(f"n{counter[0]}")

    benchmark(boot)
