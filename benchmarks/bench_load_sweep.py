"""Load-sweep saturation benchmark — throughput and tail latency vs
offered load for the three reference configurations.

The paper's claims are single-operation relative costs; this benchmark
measures what none of Table 2/3 can: behaviour under *overlapping*
requests.  For each configuration — monolithic SFS, 3-deep stacked SFS
(NULLFS / coherency / disk, one domain each), and DFS-over-SFS across
two machines — it spawns 1 → 2048 simulated clients as coroutines on
the discrete-event scheduler (:mod:`repro.sim.scheduler`).  Each client
paces itself with seeded-exponential think time and issues uncached
4 KB reads; the shared disk (one arm) and the DFS server node (finite
service slots) are the contended resources, modelled by
:class:`~repro.sim.scheduler.ServiceQueue`.

The headline shape, per configuration: throughput climbs with offered
load until the disk saturates (~73 req/s on the calibrated 4400 RPM
model: one 13.7 ms transfer at a time), then plateaus while p99 latency
grows without bound — the saturation knee.  Stacking depth and network
hops move the *latency* curves but not the plateau, which is the
paper's "the disk overhead is much higher" claim restated under load.

Everything is virtual-time deterministic: same seed, same curves, the
same record bytes on every run and platform.

Usage (from the repo root)::

    PYTHONPATH=src:. python benchmarks/bench_load_sweep.py [--smoke]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from benchmarks.emit_common import emit, ensure_repo_on_path

ensure_repo_on_path()

from repro.bench.loadgen import (
    CONFIGS,
    DFS_SERVER_SLOTS,
    FILES,
    REQUESTS,
    THINK_MEAN_US,
    sweep,
)

#: Offered-load points: concurrent clients per cell.
LOADS = [1, 4, 16, 64, 256, 1024, 2048]
SEED = 11


def build_record() -> dict:
    return {
        "workload": {
            "description": (
                "closed-loop clients: exponential think (seeded), then "
                "resolve + uncached 4KB read of one of the shared files"
            ),
            "loads": LOADS,
            "requests_per_client": REQUESTS,
            "files": FILES,
            "think_mean_us": THINK_MEAN_US,
            "dfs_server_slots": DFS_SERVER_SLOTS,
            "seed": SEED,
        },
        "configs": {
            name: sweep(name, LOADS, seed=SEED) for name in CONFIGS
        },
    }


def summarize(record: dict) -> str:
    parts = []
    for name in CONFIGS:
        result = record["configs"][name]
        parts.append(
            f"{name}: peak {result['peak_throughput_rps']} req/s "
            f"(knee @{result['knee_clients']} clients, "
            f"p99 x{result['p99_growth_x']})"
        )
    return "; ".join(parts)


def main(argv=None) -> int:
    return emit("BENCH_load.json", build_record, summarize, argv)


if __name__ == "__main__":
    sys.exit(main())
