"""Availability and recovery latency under the reference fault schedule.

A client on one machine runs a 100-operation remote workload (resolve by
path, then read or write) against a DFS-over-SFS stack on another, while
the fault plane replays the ISSUE's reference schedule: **two server
crashes and one 1.5 ms network partition**.  The two cells measure what
the fault-tolerance knobs buy:

* ``knobs_off`` — the library defaults: no retry policy, no name-cache
  stale serving.  Every operation that lands in a fault window fails.
* ``knobs_on`` — ``world.enable_retries`` (capped exponential backoff
  that carries the caller across the window), DFS crash recovery
  (epoch-bump re-registration), and ``NameCache(serve_stale=True)``.

The acceptance bar asserted by ``tests/test_fault_plane.py``: knobs-on
completes 100% of operations with zero user-visible errors; knobs-off
fails at least 20%.

Everything is virtual-time deterministic: the same schedule, the same
failures, the same record bytes on every run.

Usage (from the repo root)::

    PYTHONPATH=src:. python benchmarks/bench_fault_recovery.py [--smoke]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from benchmarks.emit_common import emit, ensure_repo_on_path

ensure_repo_on_path()

from repro.errors import SpringError
from repro.fs.dfs import export_dfs, mount_remote
from repro.fs.sfs import create_sfs
from repro.ipc.retry import RetryPolicy
from repro.naming.cache import NameCache
from repro.sim.faults import FaultPlan
from repro.storage.block_device import BlockDevice
from repro.types import PAGE_SIZE, AccessRights
from repro.world import World

OPS = 100
NUM_FILES = 8
#: Per-operation client think time (request pacing): what spreads the
#: workload over enough virtual time for the schedule to land mid-run.
THINK_US = 60.0
#: Operation index at which a binding on the resolution path changes,
#: invalidating the client's cached entries (they demote to the stale
#: table, which is what serve_stale degrades to during the partition).
INVALIDATE_AT = 45

#: The reference schedule, as offsets from the workload's first op
#: (virtual microseconds).  A successful op spans ~6ms of virtual time
#: (network round trips + server work), while an op that hits a dead
#: link fails fast, burning only its think time plus a few local
#: charges — so during an outage the clock creeps at ~65us per failed
#: op, and a 1.5ms partition wipes out a sizeable run of operations.
#: Offsets are placed from the observed timelines of *both* cells
#: (knobs-on runs ~2x faster thanks to the name cache), so every event
#: lands while each cell's workload is still in flight.
CRASH1_OFFSET = 30_000.0
CRASH1_OUTAGE = 3_500.0
PARTITION_OFFSET = 150_000.0
PARTITION_OUTAGE = 1_500.0
CRASH2_OFFSET = 240_000.0
CRASH2_OUTAGE = 3_500.0

#: Knobs-on retry policy: worst-case total backoff (~8.4ms) comfortably
#: covers the longest fault window (1.5ms), so no op exhausts retries.
POLICY = RetryPolicy(
    max_attempts=10,
    base_backoff_us=200.0,
    backoff_factor=2.0,
    max_backoff_us=1_000.0,
    timeout_us=20_000.0,
)


def reference_plan(base_us: float = 0.0) -> FaultPlan:
    """Two server crashes + one 1.5ms partition (the ISSUE schedule),
    anchored at ``base_us`` (the workload's start time)."""
    plan = FaultPlan(seed=7)
    crash1 = base_us + CRASH1_OFFSET
    plan.crash("server", at_us=crash1, recover_at_us=crash1 + CRASH1_OUTAGE)
    cut = base_us + PARTITION_OFFSET
    plan.partition(
        "server", "client", at_us=cut, heal_at_us=cut + PARTITION_OUTAGE
    )
    crash2 = base_us + CRASH2_OFFSET
    plan.crash("server", at_us=crash2, recover_at_us=crash2 + CRASH2_OUTAGE)
    return plan


def _setup(knobs_on: bool):
    world = World()
    server = world.create_node("server")
    client = world.create_node("client")
    device = BlockDevice(server.nucleus, "sd0", 8192)
    sfs = create_sfs(server, device)
    dfs = export_dfs(server, sfs.top)
    mount_remote(client, server, "dfs")
    su = world.create_user_domain(server, "su")
    cu = world.create_user_domain(client, "cu")
    with su.activate():
        proj = dfs.create_dir("proj")
        for i in range(NUM_FILES):
            proj.create_file(f"f{i}.dat").write(0, bytes([65 + i]) * PAGE_SIZE)
    cache = None
    if knobs_on:
        world.enable_retries(POLICY)
        cache = NameCache(world, serve_stale=True)
    # A client VMM mapping with a dirty page: the per-client holder
    # state the server loses on crash and must re-register to recall.
    with cu.activate():
        f0 = client.fs_context.resolve("dfs@server/proj/f0.dat")
        mapping = client.vmm.create_address_space("c").map(
            f0, AccessRights.READ_WRITE
        )
        mapping.write(0, b"client-dirty")
    return world, server, client, cache, cu


def _run_cell(knobs_on: bool) -> dict:
    world, server, client, cache, cu = _setup(knobs_on)
    world.install_fault_plan(reference_plan(base_us=world.clock.now_us))
    counters0 = world.counters.snapshot()
    messages0 = world.network.messages
    start_us = world.clock.now_us
    completed = failed = 0
    with cu.activate():
        for i in range(OPS):
            world.clock.advance(THINK_US, "client_think")
            if i == INVALIDATE_AT:
                # A binding on the resolution path changes: cached
                # entries are invalidated (stale-demoted with the knob).
                client.fs_context.bind(f"scratch{i}", object())
            path = f"dfs@server/proj/f{i % NUM_FILES}.dat"
            try:
                if cache is not None:
                    handle = cache.resolve(client.fs_context, path)
                else:
                    handle = client.fs_context.resolve(path)
                if i % 3 == 2:
                    handle.write(0, b"w" * 128)
                else:
                    handle.read(0, 128)
                completed += 1
            except SpringError:
                failed += 1
    delta = world.counters.delta_since(counters0)
    return {
        "completed": completed,
        "failed": failed,
        "availability_pct": round(100.0 * completed / OPS, 1),
        "elapsed_ms": round((world.clock.now_us - start_us) / 1000, 3),
        "recovery_backoff_ms": round(
            world.clock.charged("retry_backoff") / 1000, 3
        ),
        "messages": world.network.messages - messages0,
        "retries": delta.get("invoke.retries", 0),
        "dfs_recoveries": delta.get("dfs.recoveries", 0),
        "stale_serves": delta.get("namecache.stale_serves", 0),
        "faults_applied": {
            "crashes": delta.get("faults.crashes", 0),
            "recoveries": delta.get("faults.recoveries", 0),
            "partitions": delta.get("faults.partitions", 0),
            "heals": delta.get("faults.heals", 0),
        },
    }


def build_record() -> dict:
    return {
        "workload": {
            "description": (
                "remote DFS-over-SFS resolve + read/write under the "
                "reference fault schedule"
            ),
            "ops": OPS,
            "files": NUM_FILES,
            "think_us": THINK_US,
        },
        "schedule": {
            "crashes": [
                {"offset_us": CRASH1_OFFSET, "outage_us": CRASH1_OUTAGE},
                {"offset_us": CRASH2_OFFSET, "outage_us": CRASH2_OUTAGE},
            ],
            "partitions": [
                {"offset_us": PARTITION_OFFSET, "outage_us": PARTITION_OUTAGE}
            ],
        },
        "cells": {
            "knobs_off": _run_cell(False),
            "knobs_on": _run_cell(True),
        },
    }


def summarize(record: dict) -> str:
    off = record["cells"]["knobs_off"]
    on = record["cells"]["knobs_on"]
    return (
        f"availability: {off['availability_pct']}% -> "
        f"{on['availability_pct']}% "
        f"(recovery backoff {on['recovery_backoff_ms']}ms, "
        f"{on['retries']} retries, {on['dfs_recoveries']} DFS recoveries)"
    )


def main(argv=None) -> int:
    return emit("BENCH_faults.json", build_record, summarize, argv)


if __name__ == "__main__":
    sys.exit(main())
