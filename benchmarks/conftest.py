"""Shared benchmark configuration.

Each benchmark file reproduces one table or figure of the paper:

* the printed output (``-s`` or captured in the report) is the
  reproduced table/series in virtual time — the paper's actual claim;
* the pytest-benchmark timings measure the *simulator's* wall-clock
  cost, which is reported for completeness but is not a paper claim.
"""

import pytest


def print_banner(title: str, body: str) -> None:
    line = "#" * max(len(title) + 4, 40)
    print(f"\n{line}\n# {title}\n{line}\n{body}\n")
