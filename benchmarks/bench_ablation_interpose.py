"""Ablation D — per-file interposition cost (paper sec. 5).

Interposing an object in front of a file adds one forwarding hop per
operation.  Measured: read/write/stat latency raw vs through a
forwarding interposer (same domain and cross domain), plus the
watchdog-context resolve overhead.
"""

import pytest

from benchmarks.conftest import print_banner
from repro.bench.harness import TableFormatter, measure
from repro.fs.interposer import AuditFile, InterposedFile, WatchdogContext
from repro.fs.sfs import create_sfs
from repro.ipc.domain import Credentials
from repro.storage.block_device import BlockDevice
from repro.types import PAGE_SIZE
from repro.world import World


@pytest.fixture(scope="module")
def ablation():
    world = World()
    node = world.create_node("bench")
    stack = create_sfs(node, BlockDevice(node.nucleus, "sd0", 8192))
    user = world.create_user_domain(node)
    same_domain = stack.coherency_layer.domain
    other_domain = node.create_domain("interposer", Credentials("i", True))

    with user.activate():
        raw = stack.top.create_file("t.dat")
        raw.write(0, b"t" * PAGE_SIZE)
        raw.read(0, PAGE_SIZE)
        local = InterposedFile(same_domain, stack.top.resolve("t.dat"))
        remote = InterposedFile(other_domain, stack.top.resolve("t.dat"))

        results = {}
        for label, handle in (
            ("raw", raw),
            ("interposed same domain", local),
            ("interposed other domain", remote),
        ):
            results[label] = {
                "read": measure(
                    world, "read", lambda h=handle: h.read(0, PAGE_SIZE), 30, 3
                ).mean_us,
                "stat": measure(
                    world, "stat", lambda h=handle: h.get_attributes(), 30, 3
                ).mean_us,
            }

    table = TableFormatter(
        "Ablation D: per-file interposition overhead",
        ["4KB read", "stat"],
    )
    for label, costs in results.items():
        table.add_row(label, [costs["read"], costs["stat"]])
    print_banner("Ablation: interposition", table.render())
    return world, results


class TestInterposeAblation:
    def test_same_domain_interposer_is_cheap(self, ablation):
        world, results = ablation
        overhead = (
            results["interposed same domain"]["read"] - results["raw"]["read"]
        )
        assert overhead <= 3 * world.cost_model.local_call_us + 1

    def test_cross_domain_interposer_costs_one_crossing(self, ablation):
        world, results = ablation
        overhead = (
            results["interposed other domain"]["read"] - results["raw"]["read"]
        )
        # One extra crossing in, one forwarded call out of the
        # interposer's domain (which replaces the raw client->fs hop).
        assert overhead == pytest.approx(
            world.cost_model.cross_domain_call_us, abs=10
        )

    def test_ordering(self, ablation):
        _, results = ablation
        assert (
            results["raw"]["stat"]
            <= results["interposed same domain"]["stat"]
            <= results["interposed other domain"]["stat"]
        )


def test_bench_watchdog_resolve(benchmark, ablation):
    world = World()
    node = world.create_node("wbench")
    stack = create_sfs(node, BlockDevice(node.nucleus, "sd0", 8192))
    user = world.create_user_domain(node)
    with user.activate():
        stack.top.create_file("watched.txt")
        watchdog = WatchdogContext(node.nucleus, stack.top)
        watchdog.watch("watched.txt", lambda f: AuditFile(node.nucleus, f))
        benchmark(lambda: watchdog.resolve("watched.txt"))
