"""Benchmark regression gate.

Rebuilds each benchmark record fresh (the simulation is deterministic,
so a clean tree reproduces the committed bytes exactly) and compares the
*headline* metrics against the committed ``BENCH_*.json``.  The gate
fails when a metric is more than 10% worse than the committed value —
which catches both genuine performance regressions and records someone
forgot to re-emit after changing the cost model.

Headline metrics:

* ``BENCH_ipc.json`` — messages and elapsed time of the compound /
  name-cache cells (the point of the compound-invocation work).
* ``BENCH_paging.json`` — batched flush time and device writes (the
  point of the vectored-paging work).
* ``BENCH_faults.json`` — knobs-on availability and workload time under
  the reference fault schedule (the point of the fault-tolerance work).
* ``BENCH_load.json`` — peak throughput of the monolithic / stacked /
  DFS configurations under the concurrent load sweep (the point of the
  discrete-event scheduler work).
* ``BENCH_hotpath.json`` — wall-clock ops/sec of the zero-copy data
  plane (the point of the memoryview/__slots__ work).  Unlike every
  other record these are *wall-clock* measurements, so they carry a
  wider per-entry tolerance (25%) to absorb shared-runner noise while
  still catching a real 2x collapse.
* ``BENCH_shard.json`` — availability and tail latency of the quorum
  cell while one datanode crashes mid-write (the point of the sharded
  replication work).  Availability carries a zero tolerance — the
  quorum cell's contract is 100%, and *any* failed op is a protocol
  regression, not noise; the deterministic p99 gets the default.
* ``BENCH_volume.json`` — mount/remount and cold-stat costs of
  image-backed persistent volumes (the point of the pluggable
  block-store work): mount time and reads must not grow beyond the
  i-node-table scan, and the clean-unmount flush must stay bounded.
* ``BENCH_socket.json`` — simulated per-message virtual cost and the
  real-socket compound-batching frame counts (the point of the
  transport-seam work).  The gated metrics are deterministic protocol
  facts — the wall-clock RTT cells in the record are informational
  only; ``frames_batched`` carries zero tolerance because a compound
  batch over the wire is exactly one frame or the batching is broken.

Usage (from the repo root)::

    PYTHONPATH=src:. python benchmarks/check_regression.py [--tolerance 0.10]
"""

import argparse
import importlib
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from benchmarks.emit_common import BENCH_DIR, ensure_repo_on_path

ensure_repo_on_path()

#: Wall-clock metrics need headroom for shared-runner noise that the
#: deterministic virtual-time records never see.
WALL_CLOCK_TOLERANCE = 0.25

#: (committed file, emitter module, dotted metric path, direction,
#: per-entry tolerance or None for the ``--tolerance`` default).
#: ``lower`` metrics regress upward; ``higher`` metrics regress downward.
HEADLINE = [
    ("BENCH_ipc.json", "benchmarks.emit_bench_ipc",
     "cells.compound.messages", "lower", None),
    ("BENCH_ipc.json", "benchmarks.emit_bench_ipc",
     "cells.namecache+compound.messages", "lower", None),
    ("BENCH_ipc.json", "benchmarks.emit_bench_ipc",
     "cells.namecache+compound.elapsed_ms", "lower", None),
    ("BENCH_paging.json", "benchmarks.emit_bench_paging",
     "vectored_flush.batched.elapsed_ms", "lower", None),
    ("BENCH_paging.json", "benchmarks.emit_bench_paging",
     "vectored_flush.batched.device_writes", "lower", None),
    ("BENCH_faults.json", "benchmarks.bench_fault_recovery",
     "cells.knobs_on.availability_pct", "higher", None),
    ("BENCH_faults.json", "benchmarks.bench_fault_recovery",
     "cells.knobs_on.elapsed_ms", "lower", None),
    ("BENCH_load.json", "benchmarks.bench_load_sweep",
     "configs.monolithic.peak_throughput_rps", "higher", None),
    ("BENCH_load.json", "benchmarks.bench_load_sweep",
     "configs.stacked.peak_throughput_rps", "higher", None),
    ("BENCH_load.json", "benchmarks.bench_load_sweep",
     "configs.dfs.peak_throughput_rps", "higher", None),
    ("BENCH_hotpath.json", "benchmarks.bench_hotpath",
     "metrics.cached_reads_per_sec", "higher", WALL_CLOCK_TOLERANCE),
    ("BENCH_hotpath.json", "benchmarks.bench_hotpath",
     "metrics.flush_pages_per_sec", "higher", WALL_CLOCK_TOLERANCE),
    ("BENCH_hotpath.json", "benchmarks.bench_hotpath",
     "metrics.faults_per_sec", "higher", WALL_CLOCK_TOLERANCE),
    ("BENCH_hotpath.json", "benchmarks.bench_hotpath",
     "metrics.events_per_sec", "higher", WALL_CLOCK_TOLERANCE),
    ("BENCH_shard.json", "benchmarks.bench_dfs_shard",
     "cells.quorum.availability_pct", "higher", 0.0),
    ("BENCH_shard.json", "benchmarks.bench_dfs_shard",
     "cells.quorum.p99_ms", "lower", None),
    ("BENCH_shard.json", "benchmarks.bench_dfs_shard",
     "cells.quorum.elapsed_ms", "lower", None),
    ("BENCH_volume.json", "benchmarks.bench_volume_persist",
     "cells.10k.mount_us", "lower", None),
    ("BENCH_volume.json", "benchmarks.bench_volume_persist",
     "cells.10k.cold_stat_us", "lower", None),
    ("BENCH_volume.json", "benchmarks.bench_volume_persist",
     "cells.100k.mount_reads", "lower", None),
    ("BENCH_volume.json", "benchmarks.bench_volume_persist",
     "cells.100k.unmount_writes", "lower", None),
    ("BENCH_socket.json", "benchmarks.bench_socket_transport",
     "cells.simulated.per_message_small_us", "lower", None),
    ("BENCH_socket.json", "benchmarks.bench_socket_transport",
     "cells.simulated.per_message_page_us", "lower", None),
    ("BENCH_socket.json", "benchmarks.bench_socket_transport",
     "cells.batching.frames_individual", "lower", None),
    ("BENCH_socket.json", "benchmarks.bench_socket_transport",
     "cells.batching.frames_batched", "lower", 0.0),
]


def dig(record: dict, path: str):
    value = record
    for key in path.split("."):
        value = value[key]
    return value


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional regression before failing (default 0.10)",
    )
    args = parser.parse_args(argv)

    rebuilt = {}  # emitter module -> freshly built record
    failures = []
    for filename, module_name, path, direction, tolerance in HEADLINE:
        if tolerance is None:
            tolerance = args.tolerance
        with open(os.path.join(BENCH_DIR, filename)) as fh:
            committed = dig(json.load(fh), path)
        if module_name not in rebuilt:
            rebuilt[module_name] = importlib.import_module(
                module_name
            ).build_record()
        current = dig(rebuilt[module_name], path)
        if direction == "lower":
            regressed = current > committed * (1 + tolerance)
        else:
            regressed = current < committed * (1 - tolerance)
        delta_pct = (
            100.0 * (current - committed) / committed if committed else 0.0
        )
        status = "FAIL" if regressed else "ok"
        print(
            f"  [{status:>4}] {filename}:{path}  "
            f"committed={committed} current={current} ({delta_pct:+.1f}%)"
        )
        if regressed:
            failures.append((filename, path, committed, current))

    if failures:
        print(
            f"\nregression gate FAILED: {len(failures)} headline metric(s) "
            "worse than committed by more than their tolerance."
        )
        print(
            "If the change is intentional, re-emit the affected records "
            "(PYTHONPATH=src:. python benchmarks/<emitter>.py) and commit "
            "the new baselines with an explanation."
        )
        return 1
    print(
        f"\nregression gate OK: {len(HEADLINE)} headline metrics within "
        "tolerance of committed baselines."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
