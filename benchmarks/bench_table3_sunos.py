"""Table 3 — SunOS 4.1.3 baseline and the Spring/SunOS comparison.

Paper values: open 127 us, 4KB read 82 us, 4KB write 86 us, fstat 28 us;
"Spring is from 2 to 7 times slower than SunOS".
"""

import pytest

from benchmarks.conftest import print_banner
from repro.bench.table3 import PAPER_SUNOS_US, run_table3
from repro.types import PAGE_SIZE


@pytest.fixture(scope="module")
def table3():
    result = run_table3(iterations=30, runs=3)
    print_banner("Table 3: SunOS 4.1.3 vs Spring", result.render())
    return result


class TestTable3Shape:
    @pytest.mark.parametrize("op", list(PAPER_SUNOS_US))
    def test_sunos_absolute_values(self, table3, op):
        assert table3.sunos[op].mean_us == pytest.approx(
            PAPER_SUNOS_US[op], rel=0.02
        )

    @pytest.mark.parametrize("op", list(PAPER_SUNOS_US))
    def test_spring_2_to_7_times_slower(self, table3, op):
        assert 1.8 <= table3.ratio(op) <= 7.5

    def test_stat_is_worst_ratio(self, table3):
        """fstat has the largest SunOS advantage (28 us vs Spring's
        attribute copy + crossing) — the '7x' end of the bracket."""
        ratios = {op: table3.ratio(op) for op in PAPER_SUNOS_US}
        assert max(ratios, key=ratios.get) == "fstat"


class TestSimulatorCost:
    def test_bench_sunos_read(self, benchmark, table3):
        from repro.baseline.sunos import SunOsFs
        from repro.storage.block_device import BlockDevice
        from repro.world import World

        world = World()
        node = world.create_node("b")
        fs = SunOsFs(world, BlockDevice(node.nucleus, "sd0", 4096))
        fd = fs.open("f.dat", create=True)
        fs.pwrite(fd, b"x" * PAGE_SIZE, 0)
        benchmark(lambda: fs.pread(fd, PAGE_SIZE, 0))
