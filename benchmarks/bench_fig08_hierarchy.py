"""Figure 8 — the file system interface hierarchy.

fs + naming_context -> stackable_fs; file inherits memory_object; the
fs_cache/fs_pager narrowing protocol of sec. 4.3 behaves as specified
(VMM cache objects do NOT narrow; file-system objects do).
"""

import pytest

from benchmarks.conftest import print_banner
from repro.bench.figures import fig08_interface_hierarchy


@pytest.fixture(scope="module")
def fig08():
    result = fig08_interface_hierarchy()
    body = "\n".join(f"{key}: {value}" for key, value in result.items())
    print_banner("Figure 8: interface hierarchy", body)
    return result


class TestFig08Shape:
    def test_stackable_fs_is_both(self, fig08):
        assert fig08["stackable_fs_is_fs"]
        assert fig08["stackable_fs_is_naming_context"]

    def test_file_is_memory_object(self, fig08):
        assert fig08["file_is_memory_object"]

    def test_narrowing_protocol(self, fig08):
        assert fig08["vmm_cache_is_plain_cache"]
        assert fig08["disk_pager_narrows_to_fs_pager"]
        assert fig08["coherency_cache_obj_is_fs_cache"]


def test_bench_narrow(benchmark, fig08):
    from repro.ipc.narrow import narrow
    from repro.naming.context import MemoryContext, NamingContext
    from repro.world import World

    world = World()
    node = world.create_node("b")
    ctx = MemoryContext(node.nucleus)
    benchmark(lambda: narrow(ctx, NamingContext))
