"""Ablation E — read-ahead and clustering (paper sec. 8).

"An interesting open problem is how to implement optimizations such as
read-ahead and clustering in a system that utilizes external pagers...
One approach we are currently investigating allows a cache manager to
convey to the pager the maximum and minimum amount of data required
during a page-in."

That approach is implemented (``page_in_range`` on the pager interface,
clustered multi-block device transfers in the disk layer, sequential
window policies in the VMM and coherency layer) and measured here: a
cold sequential scan of a 32-page file, cache-miss all the way to disk,
for several window sizes.
"""

import pytest

from benchmarks.conftest import print_banner
from repro.bench.harness import TableFormatter
from repro.fs.cryptfs import CryptFs
from repro.fs.sfs import create_sfs
from repro.ipc.domain import Credentials
from repro.storage.block_device import BlockDevice
from repro.types import PAGE_SIZE, AccessRights
from repro.world import World

FILE_PAGES = 32


def _cold_scan(window: int):
    world = World()
    node = world.create_node("bench")
    device = BlockDevice(node.nucleus, "sd0", 8192)
    stack = create_sfs(node, device)
    stack.coherency_layer.readahead_pages = window
    user = world.create_user_domain(node)
    with user.activate():
        f = stack.top.create_file("scan.dat")
        f.write(0, b"s" * (FILE_PAGES * PAGE_SIZE))
        f.sync()
    state = next(iter(stack.coherency_layer._states.values()))
    state.store.clear()
    state.streams.reset()
    reads_before = device.reads
    with user.activate():
        handle = stack.top.resolve("scan.dat")
        start = world.clock.now_us
        for page in range(FILE_PAGES):
            handle.read(page * PAGE_SIZE, PAGE_SIZE)
        elapsed = world.clock.now_us - start
    return {
        "elapsed_ms": elapsed / 1000.0,
        "disk_transfers": device.reads - reads_before,
    }


def _stacked_scan(window: int):
    """Cold mapped scan through CRYPTFS stacked on SFS, read-ahead
    driven only by the VMM's window: the ranged page-ins must survive
    the encryption layer AND the coherency layer (whose own window
    stays 0) to reach the disk layer's clustering."""
    world = World()
    node = world.create_node("bench")
    device = BlockDevice(node.nucleus, "sd0", 8192)
    stack = create_sfs(node, device)
    crypt = CryptFs(
        node.create_domain("crypt", Credentials("crypt", privileged=True))
    )
    crypt.stack_on(stack.top)
    node.vmm.readahead_pages = window
    user = world.create_user_domain(node)
    payload = bytes((i // 13) % 256 for i in range(FILE_PAGES * PAGE_SIZE))
    with user.activate():
        f = crypt.create_file("scan.dat")
        f.write(0, payload)
        f.sync()
    # Cold caches: drop SFS's block cache and CRYPTFS's plaintext cache.
    state = next(iter(stack.coherency_layer._states.values()))
    state.store.clear()
    state.streams.reset()
    cstate = next(iter(crypt._states.values()))
    cstate.plain.clear()
    reads_before = device.reads
    with user.activate():
        handle = crypt.resolve("scan.dat")
        mapping = node.vmm.create_address_space("scan").map(
            handle, AccessRights.READ_ONLY
        )
        start = world.clock.now_us
        got = b"".join(
            mapping.read(page * PAGE_SIZE, PAGE_SIZE)
            for page in range(FILE_PAGES)
        )
        elapsed = world.clock.now_us - start
    return {
        "elapsed_ms": elapsed / 1000.0,
        "disk_transfers": device.reads - reads_before,
        "correct": got == payload,
    }


@pytest.fixture(scope="module")
def ablation():
    results = {window: _cold_scan(window) for window in (0, 2, 4, 8, 16)}
    table = TableFormatter(
        f"Ablation E: cold sequential scan of {FILE_PAGES} pages",
        ["scan time", "disk transfers"],
    )
    for window, data in results.items():
        label = "no read-ahead" if window == 0 else f"window {window} pages"
        table.add_row(label, [data["elapsed_ms"] * 1000, data["disk_transfers"]])
    print_banner("Ablation: read-ahead / clustering", table.render())
    return results


class TestReadaheadAblation:
    def test_monotone_improvement(self, ablation):
        times = [ablation[w]["elapsed_ms"] for w in (0, 2, 4, 8, 16)]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_window8_at_least_2x(self, ablation):
        assert ablation[8]["elapsed_ms"] < ablation[0]["elapsed_ms"] / 2

    def test_transfers_collapse(self, ablation):
        assert ablation[0]["disk_transfers"] >= FILE_PAGES
        assert ablation[8]["disk_transfers"] <= FILE_PAGES // 4 + 3

    def test_diminishing_returns(self, ablation):
        """Doubling 8 -> 16 buys less than 2 -> 4 did (seek cost is
        already amortized) — the classic clustering curve."""
        gain_small = ablation[2]["elapsed_ms"] - ablation[4]["elapsed_ms"]
        gain_large = ablation[8]["elapsed_ms"] - ablation[16]["elapsed_ms"]
        assert gain_large < gain_small


@pytest.fixture(scope="module")
def stacked():
    results = {window: _stacked_scan(window) for window in (0, 4, 8)}
    table = TableFormatter(
        f"Ablation E2: cold scan of {FILE_PAGES} pages through CRYPTFS",
        ["scan time", "disk transfers"],
    )
    for window, data in results.items():
        label = "no read-ahead" if window == 0 else f"VMM window {window}"
        table.add_row(label, [data["elapsed_ms"] * 1000, data["disk_transfers"]])
    print_banner("Ablation: read-ahead through a stacked layer", table.render())
    return results


class TestStackedReadahead:
    """The hint must *survive the stack*: only the VMM's window is set;
    CRYPTFS forwards the ranged page-in, the coherency layer prefetches
    the missing run (its own window stays 0), and the disk layer
    clusters the device transfer."""

    def test_window8_at_least_2x(self, stacked):
        assert stacked[8]["elapsed_ms"] < stacked[0]["elapsed_ms"] / 2

    def test_transfers_collapse_through_the_layer(self, stacked):
        assert stacked[0]["disk_transfers"] >= FILE_PAGES
        assert stacked[8]["disk_transfers"] <= FILE_PAGES // 4 + 3

    def test_data_correct_at_every_window(self, stacked):
        assert all(data["correct"] for data in stacked.values())


def test_bench_clustered_scan(benchmark, ablation):
    benchmark(lambda: _cold_scan(8))
