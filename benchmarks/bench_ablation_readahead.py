"""Ablation E — read-ahead and clustering (paper sec. 8).

"An interesting open problem is how to implement optimizations such as
read-ahead and clustering in a system that utilizes external pagers...
One approach we are currently investigating allows a cache manager to
convey to the pager the maximum and minimum amount of data required
during a page-in."

That approach is implemented (``page_in_range`` on the pager interface,
clustered multi-block device transfers in the disk layer, sequential
window policies in the VMM and coherency layer) and measured here: a
cold sequential scan of a 32-page file, cache-miss all the way to disk,
for several window sizes.
"""

import pytest

from benchmarks.conftest import print_banner
from repro.bench.harness import TableFormatter
from repro.fs.sfs import create_sfs
from repro.storage.block_device import BlockDevice
from repro.types import PAGE_SIZE
from repro.world import World

FILE_PAGES = 32


def _cold_scan(window: int):
    world = World()
    node = world.create_node("bench")
    device = BlockDevice(node.nucleus, "sd0", 8192)
    stack = create_sfs(node, device)
    stack.coherency_layer.readahead_pages = window
    user = world.create_user_domain(node)
    with user.activate():
        f = stack.top.create_file("scan.dat")
        f.write(0, b"s" * (FILE_PAGES * PAGE_SIZE))
        f.sync()
    state = next(iter(stack.coherency_layer._states.values()))
    state.store.clear()
    state.last_fault_index = None
    reads_before = device.reads
    with user.activate():
        handle = stack.top.resolve("scan.dat")
        start = world.clock.now_us
        for page in range(FILE_PAGES):
            handle.read(page * PAGE_SIZE, PAGE_SIZE)
        elapsed = world.clock.now_us - start
    return {
        "elapsed_ms": elapsed / 1000.0,
        "disk_transfers": device.reads - reads_before,
    }


@pytest.fixture(scope="module")
def ablation():
    results = {window: _cold_scan(window) for window in (0, 2, 4, 8, 16)}
    table = TableFormatter(
        f"Ablation E: cold sequential scan of {FILE_PAGES} pages",
        ["scan time", "disk transfers"],
    )
    for window, data in results.items():
        label = "no read-ahead" if window == 0 else f"window {window} pages"
        table.add_row(label, [data["elapsed_ms"] * 1000, data["disk_transfers"]])
    print_banner("Ablation: read-ahead / clustering", table.render())
    return results


class TestReadaheadAblation:
    def test_monotone_improvement(self, ablation):
        times = [ablation[w]["elapsed_ms"] for w in (0, 2, 4, 8, 16)]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_window8_at_least_2x(self, ablation):
        assert ablation[8]["elapsed_ms"] < ablation[0]["elapsed_ms"] / 2

    def test_transfers_collapse(self, ablation):
        assert ablation[0]["disk_transfers"] >= FILE_PAGES
        assert ablation[8]["disk_transfers"] <= FILE_PAGES // 4 + 3

    def test_diminishing_returns(self, ablation):
        """Doubling 8 -> 16 buys less than 2 -> 4 did (seek cost is
        already amortized) — the classic clustering curve."""
        gain_small = ablation[2]["elapsed_ms"] - ablation[4]["elapsed_ms"]
        gain_large = ablation[8]["elapsed_ms"] - ablation[16]["elapsed_ms"]
        assert gain_large < gain_small


def test_bench_clustered_scan(benchmark, ablation):
    benchmark(lambda: _cold_scan(8))
