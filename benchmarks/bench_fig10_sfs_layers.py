"""Figure 10 — Spring SFS structure.

"The Spring storage file system is actually implemented using two
layers": an on-disk (non-coherent) disk layer and a coherency layer
stacked on it, each in its own address space, with all files exported
via the coherency layer.
"""

import pytest

from benchmarks.conftest import print_banner
from repro.bench.figures import fig10_sfs_structure


@pytest.fixture(scope="module")
def fig10():
    result = fig10_sfs_structure()
    body = result["diagram"] + "\n" + "\n".join(
        f"{key}: {value}" for key, value in result.items() if key != "diagram"
    )
    print_banner("Figure 10: Spring SFS structure", body)
    return result


class TestFig10Shape:
    def test_two_layers(self, fig10):
        assert fig10["layers"] == ["coherency", "disk"]

    def test_separate_address_spaces(self, fig10):
        """So the disk layer can be locked in physical memory while the
        coherency layer's larger state stays pageable."""
        assert fig10["separate_domains"]
        assert len(fig10["domains"]) == 2

    def test_all_files_exported_via_coherency_layer(self, fig10):
        assert fig10["exported_is_coherency_layer"]


def test_bench_layered_vs_library_read(benchmark, fig10):
    """Sec. 6.2's note: structuring coherency as a layer performs
    comparably to a library — a cached read never crosses to the disk
    layer, so layer placement costs nothing (see Table 2)."""
    from repro.fs.sfs import create_sfs
    from repro.storage.block_device import RamDevice
    from repro.types import PAGE_SIZE
    from repro.world import World

    world = World()
    node = world.create_node("b")
    stack = create_sfs(node, RamDevice(node.nucleus, "ram0", 8192))
    user = world.create_user_domain(node)
    with user.activate():
        f = stack.top.create_file("r.dat")
        f.write(0, b"r" * PAGE_SIZE)
        f.read(0, PAGE_SIZE)
        benchmark(lambda: f.read(0, PAGE_SIZE))
