"""Figure 4 — file systems as pagers AND cache managers.

"fs1 acts as a pager to VMM through the P1 pager object... fs1 acts as a
cache manager to fs2 through the C3 cache object."  The coherency layer
of SFS plays both roles simultaneously; this bench verifies the object
topology and measures the dual-role data path.
"""

import pytest

from benchmarks.conftest import print_banner
from repro.bench.figures import fig04_dual_role


@pytest.fixture(scope="module")
def fig04():
    result = fig04_dual_role()
    body = "\n".join(f"{key}: {value}" for key, value in result.items())
    print_banner("Figure 4: dual pager/cache-manager role", body)
    return result


class TestFig04Shape:
    def test_pager_role_upward(self, fig04):
        assert fig04["acts_as_pager_to_vmm"]

    def test_cache_manager_role_downward(self, fig04):
        assert fig04["acts_as_cache_manager_below"]

    def test_vmm_is_plain_cache_manager(self, fig04):
        """The narrow-to-fs_cache fails for the VMM (paper sec. 4.3)."""
        assert fig04["up_cache_is_plain_cache"]

    def test_disk_layer_is_fs_pager(self, fig04):
        assert fig04["down_pager_is_fs_pager"]


def test_bench_cold_fault_through_both_roles(benchmark, fig04):
    """One VMM fault that misses the coherency layer's cache: pager role
    up, cache-manager role down, disk at the bottom."""
    from repro.fs.sfs import create_sfs
    from repro.storage.block_device import RamDevice
    from repro.types import PAGE_SIZE, AccessRights
    from repro.world import World

    world = World()
    node = world.create_node("b")
    stack = create_sfs(node, RamDevice(node.nucleus, "ram0", 8192))
    user = world.create_user_domain(node)
    with user.activate():
        f = stack.top.create_file("m.dat")
        f.write(0, b"m" * (16 * PAGE_SIZE))
        f.sync()
        mapping = node.vmm.create_address_space("b").map(
            f, AccessRights.READ_ONLY
        )
        coherency_state = next(iter(stack.coherency_layer._states.values()))

        def cold_fault():
            # Evict everywhere so the fault goes down both channels.
            mapping.cache.store.clear()
            coherency_state.store.clear()
            return mapping.read(0, 8)

        benchmark(cold_fault)
