"""Ablation C — DFS bind forwarding on vs off.

Figure 7's design point: forwarding local binds to the underlying file
means local clients share the same cached memory as direct SFS clients
and DFS stays out of the local page path.  Turning forwarding off makes
DFS serve local page traffic itself — an extra layer crossing per fault
and a second copy of the data cached.
"""

import pytest

from benchmarks.conftest import print_banner
from repro.bench.harness import TableFormatter, measure_once
from repro.fs.dfs import DfsLayer
from repro.fs.sfs import create_sfs
from repro.ipc.domain import Credentials
from repro.storage.block_device import BlockDevice
from repro.types import PAGE_SIZE, AccessRights
from repro.world import World


def _run(forward: bool):
    world = World()
    node = world.create_node("bench")
    stack = create_sfs(node, BlockDevice(node.nucleus, "sd0", 8192))
    dfs = DfsLayer(
        node.create_domain("dfs", Credentials("dfs", True)),
        forward_local_binds=forward,
    )
    dfs.stack_on(stack.top)
    user = world.create_user_domain(node)
    with user.activate():
        f_dfs = dfs.create_file("local.dat")
        f_dfs.write(0, b"L" * (8 * PAGE_SIZE))
        f_dfs.sync()
        # A direct-SFS client already has the file cached...
        f_sfs = stack.top.resolve("local.dat")
        aspace = node.vmm.create_address_space("u")
        m_sfs = aspace.map(f_sfs, AccessRights.READ_ONLY)
        m_sfs.read(0, 8 * PAGE_SIZE)
        # ...now a local client maps the DFS view and reads everything.
        m_dfs = aspace.map(dfs.resolve("local.dat"), AccessRights.READ_ONLY)
        cost = measure_once(
            world, "sweep", lambda: m_dfs.read(0, 8 * PAGE_SIZE)
        )
    return {
        "cost_us": cost.mean_us,
        "shared_cache": m_dfs.cache is m_sfs.cache,
        "vmm_caches": len(node.vmm.live_caches()),
        "dfs_page_ins": world.counters.get("dfs.page_in"),
    }


@pytest.fixture(scope="module")
def ablation():
    results = {True: _run(True), False: _run(False)}
    table = TableFormatter(
        "Ablation C: DFS local bind forwarding",
        ["local 8-page sweep", "shared cache?", "VMM caches", "DFS page-ins"],
    )
    for forward, data in results.items():
        table.add_row(
            "forwarding on" if forward else "forwarding off",
            [
                data["cost_us"],
                str(data["shared_cache"]),
                data["vmm_caches"],
                data["dfs_page_ins"],
            ],
        )
    print_banner("Ablation: bind forwarding", table.render())
    return results


class TestBindForwardAblation:
    def test_forwarding_shares_the_cache(self, ablation):
        assert ablation[True]["shared_cache"]
        assert not ablation[False]["shared_cache"]

    def test_forwarding_keeps_dfs_out_of_page_path(self, ablation):
        assert ablation[True]["dfs_page_ins"] == 0
        assert ablation[False]["dfs_page_ins"] > 0

    def test_forwarding_is_faster_for_local_access(self, ablation):
        """With forwarding the data is already in the shared cache; the
        sweep is pure cache hits.  Without it, every page re-faults
        through DFS."""
        assert ablation[True]["cost_us"] < ablation[False]["cost_us"]

    def test_forwarding_avoids_double_caching(self, ablation):
        assert ablation[True]["vmm_caches"] < ablation[False]["vmm_caches"]


def test_bench_forwarded_local_read(benchmark, ablation):
    world = World()
    node = world.create_node("bench")
    stack = create_sfs(node, BlockDevice(node.nucleus, "sd0", 8192))
    dfs = DfsLayer(node.create_domain("dfs", Credentials("dfs", True)))
    dfs.stack_on(stack.top)
    user = world.create_user_domain(node)
    with user.activate():
        f = dfs.create_file("x.dat")
        f.write(0, b"x" * PAGE_SIZE)
        mapping = node.vmm.create_address_space("u").map(
            dfs.resolve("x.dat"), AccessRights.READ_ONLY
        )
        mapping.read(0, 16)
        benchmark(lambda: mapping.read(0, PAGE_SIZE))
