"""Sharded-DFS availability and tail latency under a datanode crash.

A client runs a 100-operation striped read/write workload against a
3-datanode sharded DFS while the fault plane crashes one datanode
mid-write and recovers it ~250ms later.  The two cells measure what
replication + quorums buy:

* ``single_replica`` — replication 1, W = R = 1: every block lives on
  exactly one datanode, so each op whose block is homed on the dead
  node fails (no replica to fail over to).  This is the classic
  single-copy DFS data path, merely striped.
* ``quorum`` — replication 3, W = 2: writes succeed on 2-of-3 acks,
  reads fail over to a live replica, and the NameNode re-replicates
  the blocks the dead node missed once it returns.

The acceptance bar asserted by ``tests/test_dfs_shard.py``: the quorum
cell completes 100% of operations with zero user-visible errors and
every block is back to full replication after recovery; the
single-replica cell loses a sizeable run of operations.

No retry policy in either cell: replica failover — not resending — is
the availability mechanism under test (a crashed replica would fail a
resend just the same).

Everything is virtual-time deterministic: the same schedule, the same
failures, the same record bytes on every run.

Usage (from the repo root)::

    PYTHONPATH=src:. python benchmarks/bench_dfs_shard.py [--smoke]
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from benchmarks.emit_common import emit, ensure_repo_on_path

ensure_repo_on_path()

from repro.dfs import create_sharded_dfs
from repro.errors import SpringError
from repro.sim.faults import FaultPlan
from repro.types import PAGE_SIZE
from repro.world import World

OPS = 100
NUM_FILES = 4
FILE_PAGES = 8
DATANODES = 3
#: Per-operation client think time (request pacing).
THINK_US = 60.0
#: Datanode heartbeat interval: long enough that the inline liveness
#: scan (3 pings, ~6ms) does not dominate the op stream, short enough
#: that the NameNode notices the crash within a handful of ops.
HEARTBEAT_US = 20_000.0
#: Finite service slots per datanode, so block ops queue like the
#: single-server DFS benchmarks' server queue does.
SERVER_SLOTS = 2

#: The reference schedule, as offsets from the workload's first op
#: (virtual microseconds).  From the observed quorum-cell timeline a
#: striped write spans ~12ms (prepare + 3-way put fan-out + commit) and
#: op 20 — a write — runs over offsets 181..193ms, so a crash at 185ms
#: lands *inside* its replica fan-out: the op must succeed on the acks
#: of the two survivors.  The 250ms outage covers roughly 25 more ops
#: before the datanode returns and re-replication catches it up.
CRASH_NODE = "dn1"
CRASH_OFFSET = 185_000.0
CRASH_OUTAGE = 250_000.0


def reference_plan(base_us: float = 0.0) -> FaultPlan:
    """One datanode crash mid-write, anchored at ``base_us``."""
    plan = FaultPlan(seed=11)
    at = base_us + CRASH_OFFSET
    plan.crash(CRASH_NODE, at_us=at, recover_at_us=at + CRASH_OUTAGE)
    return plan


def _percentile(samples, q: float) -> float:
    """Nearest-rank percentile of a non-empty sample list."""
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def _setup(replication: int, write_quorum: int):
    cluster = create_sharded_dfs(
        world=World(),
        datanodes=DATANODES,
        replication=replication,
        write_quorum=write_quorum,
        read_quorum=1,
        heartbeat_interval_us=HEARTBEAT_US,
        server_slots=SERVER_SLOTS,
    )
    user = cluster.world.create_user_domain(cluster.client)
    handles = []
    with user.activate():
        for i in range(NUM_FILES):
            handle = cluster.layer.create_file(f"f{i}.dat")
            handle.write(0, bytes([65 + i]) * (PAGE_SIZE * FILE_PAGES))
            handles.append(handle)
    return cluster, user, handles


def _run_cell(replication: int, write_quorum: int) -> dict:
    cluster, user, handles = _setup(replication, write_quorum)
    world = cluster.world
    world.install_fault_plan(reference_plan(base_us=world.clock.now_us))
    counters0 = world.counters.snapshot()
    messages0 = world.network.messages
    start_us = world.clock.now_us
    completed = failed = 0
    latencies_us = []
    with user.activate():
        for i in range(OPS):
            world.clock.advance(THINK_US, "client_think")
            handle = handles[i % NUM_FILES]
            page = (i // NUM_FILES) % FILE_PAGES
            op_start = world.clock.now_us
            try:
                if i % 3 == 2:
                    handle.write(page * PAGE_SIZE, bytes([i % 251]) * PAGE_SIZE)
                else:
                    handle.read(page * PAGE_SIZE, PAGE_SIZE)
                completed += 1
                latencies_us.append(world.clock.now_us - op_start)
            except SpringError:
                failed += 1
    elapsed_ms = round((world.clock.now_us - start_us) / 1000, 3)
    # Post-run convergence: one forced scan + unbounded repair budget,
    # then ask whether every block is back at full replication.
    cluster.namenode.heartbeat_scan()
    cluster.namenode.repair()
    delta = world.counters.delta_since(counters0)
    return {
        "completed": completed,
        "failed": failed,
        "availability_pct": round(100.0 * completed / OPS, 1),
        "p50_ms": round(_percentile(latencies_us, 0.50) / 1000, 3),
        "p99_ms": round(_percentile(latencies_us, 0.99) / 1000, 3),
        "elapsed_ms": elapsed_ms,
        "messages": world.network.messages - messages0,
        "quorum_writes": delta.get("shard.quorum_writes", 0),
        "quorum_failures": delta.get("shard.quorum_failures", 0),
        "write_failovers": delta.get("shard.write_failover", 0),
        "read_failovers": delta.get("shard.read_failover", 0),
        "reads_unavailable": delta.get("shard.read_unavailable", 0),
        "re_replications": delta.get("shard.nn.re_replications", 0),
        "rebalanced": delta.get("shard.nn.rebalanced", 0),
        "fully_replicated": cluster.namenode.fully_replicated(),
        "under_replicated": cluster.namenode.under_replicated_count(),
        "faults_applied": {
            "crashes": delta.get("faults.crashes", 0),
            "recoveries": delta.get("faults.recoveries", 0),
        },
    }


def build_record() -> dict:
    return {
        "workload": {
            "description": (
                "striped page read/write on a 3-datanode sharded DFS "
                "while one datanode crashes mid-write and later recovers"
            ),
            "ops": OPS,
            "files": NUM_FILES,
            "file_pages": FILE_PAGES,
            "datanodes": DATANODES,
            "think_us": THINK_US,
            "heartbeat_us": HEARTBEAT_US,
            "server_slots": SERVER_SLOTS,
        },
        "schedule": {
            "crashes": [
                {
                    "node": CRASH_NODE,
                    "offset_us": CRASH_OFFSET,
                    "outage_us": CRASH_OUTAGE,
                }
            ],
        },
        "cells": {
            "single_replica": _run_cell(replication=1, write_quorum=1),
            "quorum": _run_cell(replication=3, write_quorum=2),
        },
    }


def summarize(record: dict) -> str:
    single = record["cells"]["single_replica"]
    quorum = record["cells"]["quorum"]
    return (
        f"availability: {single['availability_pct']}% -> "
        f"{quorum['availability_pct']}% "
        f"(p99 {quorum['p99_ms']}ms, "
        f"{quorum['re_replications']} re-replications, "
        f"fully replicated: {quorum['fully_replicated']})"
    )


def main(argv=None) -> int:
    return emit("BENCH_shard.json", build_record, summarize, argv)


if __name__ == "__main__":
    sys.exit(main())
