"""Macro-benchmark — the paper's "real applications" claim.

"Based on the estimates of name lookup overhead on the macro-benchmarks
in [16], we believe that the open overhead when two layers are in
different domains will not be significant for real applications."

Micro-benchmarks (Table 2) show +101% on open; this bench runs an
application-like workload — create a source tree, write files, compile-
style re-reads, stat sweeps — against all three placements and measures
the *end-to-end* overhead, which is what the paper predicts stays small.
"""

import pytest

from benchmarks.conftest import print_banner
from repro.bench.harness import TableFormatter, normalized
from repro.bench.workloads import compressible_bytes, file_names
from repro.fs.sfs import PLACEMENTS, create_sfs
from repro.storage.block_device import BlockDevice
from repro.types import PAGE_SIZE
from repro.unix import O_CREAT, O_RDONLY, O_RDWR, Posix
from repro.world import World

FILES = 24
FILE_SIZE = 3 * PAGE_SIZE
FLUSH_PAGES = 256  # 1 MB sequential write, then sync


def _invocations(world: World) -> int:
    return sum(
        count
        for key, count in world.counters.snapshot().items()
        if key.startswith("invoke.")
    )


def _run(placement: str) -> dict:
    world = World()
    node = world.create_node("bench")
    device = BlockDevice(node.nucleus, "sd0", 32768)
    stack = create_sfs(node, device, placement=placement)
    user = world.create_user_domain(node)
    posix = Posix(stack.top, user)
    names = file_names(FILES, prefix="src")

    start = world.clock.now_us
    # Phase 1: populate a project tree.
    posix.mkdir("project")
    for i, name in enumerate(names):
        fd = posix.open(f"project/{name}", O_RDWR | O_CREAT)
        posix.write(fd, compressible_bytes(FILE_SIZE, seed=i))
        posix.close(fd)
    build_us = world.clock.now_us - start

    # Phase 2: compile-style pass — stat everything, read everything.
    start = world.clock.now_us
    for _ in range(3):
        for name in names:
            posix.stat(f"project/{name}")
        for name in names:
            fd = posix.open(f"project/{name}", O_RDONLY)
            while posix.read(fd, PAGE_SIZE):
                pass
            posix.close(fd)
    compile_us = world.clock.now_us - start

    # Phase 3: open-heavy pass (the worst case for stacking).
    start = world.clock.now_us
    for _ in range(5):
        for name in names:
            posix.close(posix.open(f"project/{name}", O_RDONLY))
    open_us = world.clock.now_us - start

    return {
        "build_ms": build_us / 1000,
        "compile_ms": compile_us / 1000,
        "open_ms": open_us / 1000,
        "total_ms": (build_us + compile_us + open_us) / 1000,
        "invocations": _invocations(world),
    }


def _run_flush(batch: bool) -> dict:
    """Sequential uncached write/flush: create a 1 MB file and sync it
    through the two-domain SFS, with vectored page-out off or on.  Per
    page, an unbatched flush pays one invocation plus one full disk
    transfer (~13.7 ms); batching coalesces the dirty run into one
    ranged sync and one clustered device write."""
    world = World()
    node = world.create_node("bench")
    device = BlockDevice(node.nucleus, "sd0", 32768)
    stack = create_sfs(node, device, placement="two_domains")
    stack.coherency_layer.batch_pageout = batch
    node.vmm.batch_pageout = batch
    user = world.create_user_domain(node)
    payload = bytes((i // 11) % 256 for i in range(FLUSH_PAGES * PAGE_SIZE))
    with user.activate():
        f = stack.top.create_file("big.out")
        start = world.clock.now_us
        f.write(0, payload)
        f.sync()
        elapsed = world.clock.now_us - start
        # Cold read-back: drop the cache so the data on the device (not
        # the write cache) is what round-trips.
        state = next(iter(stack.coherency_layer._states.values()))
        state.store.clear()
        readback = f.read(0, len(payload))
    return {
        "elapsed_ms": elapsed / 1000.0,
        "device_writes": device.writes,
        "invocations": _invocations(world),
        "readback_ok": readback == payload,
    }


@pytest.fixture(scope="module")
def macro():
    results = {placement: _run(placement) for placement in PLACEMENTS}
    table = TableFormatter(
        f"Macro workload: {FILES} files x {FILE_SIZE // 1024} KB project",
        ["build", "compile x3", "open-heavy x5", "total", "total %"],
    )
    base = results["not_stacked"]["total_ms"]
    for placement, data in results.items():
        table.add_row(
            placement,
            [
                data["build_ms"] * 1000,
                data["compile_ms"] * 1000,
                data["open_ms"] * 1000,
                data["total_ms"] * 1000,
                normalized(data["total_ms"], base),
            ],
        )
    print_banner("Macro workload across placements", table.render())
    return results


@pytest.fixture(scope="module")
def flush():
    results = {batch: _run_flush(batch) for batch in (False, True)}
    table = TableFormatter(
        f"Vectored flush: {FLUSH_PAGES * PAGE_SIZE // 1024} KB sequential "
        "write + sync (two domains)",
        ["flush time", "device writes", "invocations"],
    )
    for batch, data in results.items():
        table.add_row(
            "batched page-out" if batch else "per-page page-out",
            [
                data["elapsed_ms"] * 1000,
                data["device_writes"],
                data["invocations"],
            ],
        )
    print_banner("Macro: vectored write-back", table.render())
    return results


class TestVectoredFlush:
    def test_batched_flush_at_least_30pct_faster(self, flush):
        """The tentpole claim: batching contiguous dirty pages into
        ranged pager calls + clustered device writes cuts the uncached
        sequential flush by well over the 30% acceptance bar."""
        assert flush[True]["elapsed_ms"] <= flush[False]["elapsed_ms"] * 0.7

    def test_data_identical_either_way(self, flush):
        assert flush[False]["readback_ok"] and flush[True]["readback_ok"]

    def test_batched_flush_fewer_device_transfers(self, flush):
        assert flush[True]["device_writes"] < flush[False]["device_writes"]

    def test_batched_flush_fewer_invocations(self, flush):
        assert flush[True]["invocations"] < flush[False]["invocations"]


class TestMacroClaim:
    def test_end_to_end_overhead_is_small(self, macro):
        """The paper's prediction: cross-domain stacking costs little on
        application-like work (disk + data dominate).  Measured: ~11%
        end-to-end vs +101% on the open micro-benchmark."""
        base = macro["not_stacked"]["total_ms"]
        stacked = macro["two_domains"]["total_ms"]
        assert stacked / base < 1.15, f"{stacked / base:.2%}"

    def test_open_heavy_phase_shows_the_microbenchmark_effect(self, macro):
        """...while the open-only phase still shows Table 2's ~2x."""
        base = macro["not_stacked"]["open_ms"]
        stacked = macro["two_domains"]["open_ms"]
        assert stacked / base > 1.5

    def test_build_phase_disk_bound(self, macro):
        base = macro["not_stacked"]["build_ms"]
        stacked = macro["two_domains"]["build_ms"]
        assert stacked / base < 1.15

    def test_results_ordered_by_placement(self, macro):
        totals = [macro[p]["total_ms"] for p in PLACEMENTS]
        assert totals[0] <= totals[1] <= totals[2]


def test_bench_macro_compile_phase(benchmark, macro):
    benchmark.pedantic(lambda: _run("two_domains"), iterations=1, rounds=2)
