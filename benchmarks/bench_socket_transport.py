"""Simulated vs. real-socket message costs, and batching over the wire.

Two backends carry the same operation surface (see
``repro.ipc.transport``); this benchmark puts numbers on the gap:

* ``simulated`` — what the cost model *charges* for a cross-node
  message (virtual microseconds per ``Network.transfer``, at the small-
  control-message and 4 KB-payload points).  Deterministic.

* ``socket`` — what a real localhost TCP round trip *costs* through the
  length-prefixed wire format: per-message RTT percentiles for the same
  two payload points, measured wall-clock against an in-process
  ``SocketServer``.  Wall numbers are environment-dependent and are
  recorded for trend-watching, not gated.

* ``batching`` — the compound-invocation ablation over real sockets:
  ``OPS`` stat calls issued one frame each vs. the same calls in one
  compound frame.  Frame counts are exact protocol facts (gated); the
  wall-clock speedup is recorded alongside.

Regression-gated metrics (see ``check_regression.py``) are chosen to be
deterministic: the virtual per-message costs and the frame counts.  A
transport change that silently turns one batch into N frames — or a
cost-model change that cheapens simulated messages out from under the
calibration — fails the gate.

Usage (from the repo root)::

    PYTHONPATH=src:. python benchmarks/bench_socket_transport.py [--smoke]
"""

import os
import statistics
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from benchmarks.emit_common import emit, ensure_repo_on_path

ensure_repo_on_path()

from repro.ipc import CompoundInvocation
from repro.ipc.transport import ServerThread, SocketTransport
from repro.serve import Control, FileService, build_service
from repro.world import World

#: Payload points: a small control message and one page.
SMALL_BYTES = 64
PAGE_BYTES = 4096
#: Round trips per wall-clock sample set.
PINGS = 200
#: Ops in the batching ablation.
OPS = 64


def measure_simulated() -> dict:
    """Virtual-time cost of one cross-node message at both payload
    points — exactly what every remote invocation in the reproduction
    is charged."""
    world = World()
    a = world.create_node("client")
    b = world.create_node("server")
    cells = {}
    for name, nbytes in (("small", SMALL_BYTES), ("page", PAGE_BYTES)):
        start = world.clock.now_us
        for _ in range(PINGS):
            world.network.send(a, b, nbytes)
        cells[f"per_message_{name}_us"] = round(
            (world.clock.now_us - start) / PINGS, 3
        )
    cells["messages"] = world.network.messages
    return cells


def _served_file_world():
    world, node, service = build_service("sfs")
    node.expose("fs", service)
    node.expose("control", Control(world))
    server = node.serve()
    thread = ServerThread(server)
    port = thread.start()
    return server, thread, port


def measure_socket() -> dict:
    """Wall-clock RTT through the real wire at both payload points."""
    server, thread, port = _served_file_world()
    client = SocketTransport("127.0.0.1", port)
    try:
        cells = {}
        for name, nbytes in (("small", SMALL_BYTES), ("page", PAGE_BYTES)):
            client.send(None, None, nbytes)  # warm the connection
            samples = []
            for _ in range(PINGS):
                start = time.perf_counter()
                client.send(None, None, nbytes)
                samples.append((time.perf_counter() - start) * 1e6)
            samples.sort()
            cells[f"rtt_{name}_p50_us"] = round(statistics.median(samples), 1)
            cells[f"rtt_{name}_p95_us"] = round(
                samples[int(len(samples) * 0.95)], 1
            )
        return cells
    finally:
        client.close()
        thread.stop()


def measure_batching() -> dict:
    """Compound ablation over real sockets: OPS stats, one frame each
    vs. one compound frame for all of them."""
    server, thread, port = _served_file_world()
    client = SocketTransport("127.0.0.1", port)
    try:
        fs = client.bind("fs", idempotent=FileService.IDEMPOTENT_OPS)
        fs.mkdir("d")
        paths = []
        for index in range(OPS):
            path = f"d/f{index:03d}"
            fs.write_file(path, b"x" * 64)
            paths.append(path)

        frames_before = client.messages
        start = time.perf_counter()
        for path in paths:
            fs.stat(path)
        individual_s = time.perf_counter() - start
        individual_frames = client.messages - frames_before

        frames_before = client.messages
        batch = CompoundInvocation()
        for path in paths:
            batch.add(fs.stat, path)
        start = time.perf_counter()
        result = batch.commit()
        batched_s = time.perf_counter() - start
        batched_frames = client.messages - frames_before
        assert len(result.values()) == OPS

        return {
            "ops": OPS,
            "frames_individual": individual_frames,
            "frames_batched": batched_frames,
            "elapsed_individual_ms": round(individual_s * 1e3, 2),
            "elapsed_batched_ms": round(batched_s * 1e3, 2),
            "wall_speedup": round(individual_s / batched_s, 2)
            if batched_s > 0 else 0.0,
        }
    finally:
        client.close()
        thread.stop()


def build_record() -> dict:
    return {
        "schema": "bench_socket/1",
        "config": {
            "pings": PINGS,
            "ops": OPS,
            "small_bytes": SMALL_BYTES,
            "page_bytes": PAGE_BYTES,
        },
        "cells": {
            "simulated": measure_simulated(),
            "socket": measure_socket(),
            "batching": measure_batching(),
        },
    }


def summarize(record: dict) -> str:
    cells = record["cells"]
    return (
        f"simulated {cells['simulated']['per_message_small_us']}us/msg vs "
        f"socket p50 {cells['socket']['rtt_small_p50_us']}us/msg; "
        f"batching {cells['batching']['frames_individual']} frames -> "
        f"{cells['batching']['frames_batched']} "
        f"({cells['batching']['wall_speedup']}x wall)"
    )


def main(argv=None) -> int:
    return emit("BENCH_socket.json", build_record, summarize, argv)


if __name__ == "__main__":
    sys.exit(main())
