"""Compound remote invocation on a path-heavy remote workload.

The scenario the paper's sec. 6.4 worries about: a client on one machine
repeatedly opening and stat-ing files served by a DFS-over-SFS stack on
another.  Uncompounded, every open is a chain of per-component and
per-step round trips.  The 2x2 ablation measures what each remedy buys:

* ``namecache`` — the client-side name cache (LRU + negative entries +
  prefix sharing; with compound also ``one_hop`` server-side walks);
* ``compound`` — intent opens (lookup + access check + attribute fetch
  in one invocation) batched with :class:`CompoundInvocation`, one
  network message per batch.

Both knobs default off in the library; cells here turn them on
explicitly, so the off/off cell is the existing calibrated behaviour.
"""

import pytest

from benchmarks.conftest import print_banner
from repro.bench.harness import TableFormatter
from repro.fs.dfs import export_dfs, mount_remote
from repro.fs.sfs import create_sfs
from repro.ipc.compound import CompoundInvocation
from repro.naming.cache import NameCache
from repro.storage.block_device import BlockDevice
from repro.types import AccessRights
from repro.world import World

NUM_FILES = 8
ROUNDS = 4
CELLS = [
    ("baseline", False, False),
    ("namecache", True, False),
    ("compound", False, True),
    ("namecache+compound", True, True),
]


def _setup(compound: bool):
    world = World()
    server = world.create_node("server")
    client = world.create_node("client")
    device = BlockDevice(server.nucleus, "sd0", 8192)
    sfs = create_sfs(server, device)
    dfs = export_dfs(server, sfs.top, compound=compound)
    mount_remote(client, server, "dfs")
    su = world.create_user_domain(server, "su")
    cu = world.create_user_domain(client, "cu")
    with su.activate():
        src = dfs.create_dir("proj").create_dir("src")
        for i in range(NUM_FILES):
            src.create_file(f"f{i}.c").write(0, b"int main;" * (i + 1))
    return world, server, client, dfs, cu


def _run_cell(use_cache: bool, use_compound: bool) -> dict:
    """ROUNDS passes of: look at the source directory, then open+stat
    every file in it.  Returns message/byte/time deltas for the client's
    side of the workload, plus the observed file sizes (for checking the
    cells agree on the data)."""
    world, server, client, dfs, cu = _setup(use_compound)
    cache = NameCache(world, one_hop=use_compound) if use_cache else None
    sizes = []
    m0, b0, t0 = (
        world.network.messages,
        world.network.bytes_count(client, server),
        world.clock.now_us,
    )
    with cu.activate():
        for _ in range(ROUNDS):
            if cache is not None:
                directory = cache.resolve(dfs, "proj/src")
            else:
                directory = dfs.resolve("proj/src")
            if use_compound:
                batch = CompoundInvocation(world)
                for i in range(NUM_FILES):
                    batch.add(directory.open_intent, f"f{i}.c")
                sizes.append(
                    [r.attributes.size for r in batch.commit().values()]
                )
            else:
                round_sizes = []
                for i in range(NUM_FILES):
                    if cache is not None:
                        f = cache.resolve(dfs, f"proj/src/f{i}.c")
                    else:
                        f = dfs.resolve(f"proj/src/f{i}.c")
                    f.check_access(AccessRights.READ_ONLY)
                    round_sizes.append(f.get_attributes().size)
                sizes.append(round_sizes)
    return {
        "messages": world.network.messages - m0,
        "client_to_server_bytes": world.network.bytes_count(client, server)
        - b0,
        "elapsed_ms": round((world.clock.now_us - t0) / 1000, 3),
        "opens": ROUNDS * NUM_FILES,
        "sizes": sizes,
    }


@pytest.fixture(scope="module")
def cells():
    rows = {name: _run_cell(nc, co) for name, nc, co in CELLS}
    table = TableFormatter(
        f"Remote open+stat x{ROUNDS * NUM_FILES} (messages / ms)",
        ["network msgs", "elapsed ms"],
    )
    for name, row in rows.items():
        table.add_row(name, [row["messages"], row["elapsed_ms"]])
    print_banner("Compound invocation ablation", table.render())
    return rows


class TestCompoundAblation:
    def test_compound_cuts_messages_at_least_40pct(self, cells):
        """The ISSUE's acceptance bar: >= 40% fewer network messages
        with the compound knob on, same workload."""
        baseline = cells["baseline"]["messages"]
        compound = cells["compound"]["messages"]
        assert compound <= baseline * 0.6

    def test_both_knobs_strictly_best(self, cells):
        both = cells["namecache+compound"]["messages"]
        assert both <= cells["compound"]["messages"]
        assert both <= cells["namecache"]["messages"]
        assert both < cells["baseline"]["messages"]

    def test_namecache_alone_helps_repeat_opens(self, cells):
        assert cells["namecache"]["messages"] < cells["baseline"]["messages"]

    def test_cells_agree_on_attributes(self, cells):
        expected = cells["baseline"]["sizes"]
        for name, row in cells.items():
            assert row["sizes"] == expected, name

    def test_compound_saves_virtual_time_too(self, cells):
        assert (
            cells["namecache+compound"]["elapsed_ms"]
            < cells["baseline"]["elapsed_ms"]
        )


def test_bench_compound_open(benchmark):
    world, server, client, dfs, cu = _setup(True)
    def open_all():
        batch = CompoundInvocation(world)
        for i in range(NUM_FILES):
            batch.add(dfs.open_intent, f"proj/src/f{i}.c")
        return batch.commit()
    with cu.activate():
        benchmark(open_all)
