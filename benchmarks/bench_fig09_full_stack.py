"""Figure 9 / sec. 4.5 — DFS on COMPFS on SFS, end to end.

The full walkthrough: creators looked up in /fs_creators, instances
created and stack_on'd, the stack exported, and a remote read that flows
DFS -> COMPFS (uncompress) -> SFS -> disk, coherent at every level.
"""

import pytest

from benchmarks.conftest import print_banner
from repro.bench.figures import fig09_full_stack


@pytest.fixture(scope="module")
def fig09():
    result = fig09_full_stack()
    body = result["layer_order"] + "\n" + "\n".join(
        f"{key}: {value}"
        for key, value in result.items()
        if key not in ("layer_order",)
    )
    print_banner("Figure 9: DFS on COMPFS on SFS", body)
    return result


class TestFig09Shape:
    def test_remote_read_correct(self, fig09):
        assert fig09["remote_read_correct"]

    def test_three_layer_stack_plus_disk(self, fig09):
        assert fig09["depth"] == 4  # dfs, compfs, coherency, disk

    def test_compression_active_under_distribution(self, fig09):
        assert fig09["stored_bytes"] < fig09["plain_bytes"]

    def test_read_flowed_through_the_layers(self, fig09):
        traffic = fig09["remote_read_traffic"]
        # One network hop in (resolve was earlier), then the read is
        # forwarded layer to layer: DFS -> COMPFS -> SFS -> disk.
        assert traffic.get("invoke.network", 0) >= 1
        assert traffic.get("invoke.cross_domain", 0) >= 3
        assert traffic.get("op.read", 0) >= 2


def test_bench_full_stack_remote_read(benchmark, fig09):
    from repro.fs.creators import (
        LayerSpec,
        build_stack,
        register_standard_creators,
    )
    from repro.fs.dfs import mount_remote
    from repro.fs.sfs import create_sfs
    from repro.storage.block_device import RamDevice
    from repro.world import World

    world = World()
    server = world.create_node("server")
    client = world.create_node("client")
    register_standard_creators(server)
    sfs = create_sfs(server, RamDevice(server.nucleus, "ram0", 8192))
    compfs, dfs = build_stack(
        server, sfs.top, [LayerSpec("compfs"), LayerSpec("dfs")],
        export_as="stacked",
    )
    mount_remote(client, server, "stacked")
    su = world.create_user_domain(server, "su")
    cu = world.create_user_domain(client, "cu")
    with su.activate():
        f = dfs.create_file("b.dat")
        f.write(0, b"benchmark " * 400)
        f.sync()
    with cu.activate():
        rf = client.fs_context.resolve("stacked@server").resolve("b.dat")
        benchmark(lambda: rf.read(0, 4000))
